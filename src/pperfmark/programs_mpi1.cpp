// The MPI-1 PPerfMark programs (paper Table 2).  Each has a known
// bottleneck the tool must find.
#include <random>

#include "pperfmark/detail.hpp"
#include "util/clock.hpp"

namespace m2p::ppm::detail {

namespace {

using simmpi::Comm;
using simmpi::Rank;
using simmpi::Status;
using simmpi::MPI_ANY_SOURCE;
using simmpi::MPI_BYTE;
using simmpi::MPI_CHAR;
using simmpi::MPI_DOUBLE;
using simmpi::MPI_INT;
using simmpi::MPI_PROC_NULL;
using simmpi::MPI_SUM;

void gsend(Rank& r, const Ctx& cx, const void* buf, int bytes, int dest, int tag,
           Comm c) {
    instr::FunctionGuard g(r.world().registry(), cx.f.Gsend_message);
    r.MPI_Send(buf, bytes, MPI_BYTE, dest, tag, c);
}

void grecv(Rank& r, const Ctx& cx, void* buf, int bytes, int src, int tag, Comm c,
           Status* st = nullptr) {
    instr::FunctionGuard g(r.world().registry(), cx.f.Grecv_message);
    r.MPI_Recv(buf, bytes, MPI_BYTE, src, tag, c, st);
}

/// small-messages: many small client->server messages; the bottleneck
/// is the clients flooding the single server (clients block in
/// MPI_Send under eager flow control).
void small_messages(Rank& r, const Ctx& cx) {
    r.MPI_Init();
    const Comm world = r.MPI_COMM_WORLD();
    int me = 0, n = 0;
    r.MPI_Comm_rank(world, &me);
    r.MPI_Comm_size(world, &n);
    std::vector<char> buf(static_cast<std::size_t>(cx.p.small_message_bytes), 'x');
    if (me == 0) {
        const long long total =
            static_cast<long long>(cx.p.iterations) * (n - 1);
        for (long long i = 0; i < total; ++i)
            grecv(r, cx, buf.data(), cx.p.small_message_bytes, MPI_ANY_SOURCE, 0, world);
    } else {
        for (int i = 0; i < cx.p.iterations; ++i)
            gsend(r, cx, buf.data(), cx.p.small_message_bytes, 0, 0, world);
    }
    r.MPI_Finalize();
}

/// big-message: two processes exchange very large messages; the
/// bottleneck is the overhead of setting up/sending them (rendezvous).
void big_message(Rank& r, const Ctx& cx) {
    r.MPI_Init();
    const Comm world = r.MPI_COMM_WORLD();
    int me = 0;
    r.MPI_Comm_rank(world, &me);
    std::vector<char> buf(static_cast<std::size_t>(cx.p.big_message_bytes), 'b');
    for (int i = 0; i < cx.p.iterations; ++i) {
        if (me == 0) {
            gsend(r, cx, buf.data(), cx.p.big_message_bytes, 1, 1, world);
            grecv(r, cx, buf.data(), cx.p.big_message_bytes, 1, 2, world);
        } else if (me == 1) {
            grecv(r, cx, buf.data(), cx.p.big_message_bytes, 0, 1, world);
            gsend(r, cx, buf.data(), cx.p.big_message_bytes, 0, 2, world);
        }
    }
    r.MPI_Finalize();
}

/// wrong-way: the receiver expects tags in ascending order but the
/// sender emits each burst in descending order, so every burst makes
/// the receiver wait for the last-sent message.
void wrong_way(Rank& r, const Ctx& cx) {
    r.MPI_Init();
    const Comm world = r.MPI_COMM_WORLD();
    int me = 0;
    r.MPI_Comm_rank(world, &me);
    std::vector<char> buf(static_cast<std::size_t>(cx.p.small_message_bytes), 'w');
    for (int i = 0; i < cx.p.iterations; ++i) {
        if (me == 0) {
            for (int t = cx.p.wrongway_batch - 1; t >= 0; --t)
                gsend(r, cx, buf.data(), cx.p.small_message_bytes, 1, t, world);
        } else if (me == 1) {
            for (int t = 0; t < cx.p.wrongway_batch; ++t)
                grecv(r, cx, buf.data(), cx.p.small_message_bytes, 0, t, world);
        }
    }
    r.MPI_Finalize();
}

/// intensive-server: clients wait on an overloaded server that wastes
/// time before each reply (clients bottleneck in MPI_Recv; the server
/// is CPU bound in waste_time).
void intensive_server(Rank& r, const Ctx& cx) {
    r.MPI_Init();
    const Comm world = r.MPI_COMM_WORLD();
    int me = 0, n = 0;
    r.MPI_Comm_rank(world, &me);
    r.MPI_Comm_size(world, &n);
    char req = 'q', rep = 'a';
    if (me == 0) {
        const long long total = static_cast<long long>(cx.p.iterations) * (n - 1);
        for (long long i = 0; i < total; ++i) {
            Status st;
            grecv(r, cx, &req, 1, MPI_ANY_SOURCE, 0, world, &st);
            waste_time(r, cx, cx.p.time_to_waste);
            gsend(r, cx, &rep, 1, st.MPI_SOURCE, 1, world);
        }
    } else {
        for (int i = 0; i < cx.p.iterations; ++i) {
            gsend(r, cx, &req, 1, 0, 0, world);
            grecv(r, cx, &rep, 1, 0, 1, world);
        }
    }
    r.MPI_Finalize();
}

/// random-barrier: each iteration one (pseudo-)randomly chosen process
/// wastes time while the rest wait in MPI_Barrier -- a load imbalance
/// that moves around.
void random_barrier(Rank& r, const Ctx& cx) {
    r.MPI_Init();
    const Comm world = r.MPI_COMM_WORLD();
    int me = 0, n = 0;
    r.MPI_Comm_rank(world, &me);
    r.MPI_Comm_size(world, &n);
    std::mt19937 rng(12345);  // same seed everywhere: same waster choice
    for (int i = 0; i < cx.p.iterations; ++i) {
        const int waster = static_cast<int>(rng() % static_cast<unsigned>(n));
        if (me == waster) waste_time(r, cx, cx.p.time_to_waste);
        r.MPI_Barrier(world);
    }
    r.MPI_Finalize();
}

/// diffuse-procedure: bottleneckProcedure consumes most of the time,
/// but each process takes turns running it while the others wait in
/// MPI_Barrier -- a computational bottleneck diffused over processes.
void diffuse_procedure(Rank& r, const Ctx& cx) {
    r.MPI_Init();
    const Comm world = r.MPI_COMM_WORLD();
    int me = 0, n = 0;
    r.MPI_Comm_rank(world, &me);
    r.MPI_Comm_size(world, &n);
    instr::Registry& reg = r.world().registry();
    for (int i = 0; i < cx.p.iterations; ++i) {
        if (i % n == me) {
            instr::FunctionGuard g(reg, cx.f.bottleneckProcedure);
            util::burn_thread_cpu(cx.p.time_to_waste * cx.p.waste_unit_seconds);
        } else if (!cx.f.irrelevantProcedures.empty()) {
            instr::FunctionGuard g(
                reg, cx.f.irrelevantProcedures[static_cast<std::size_t>(i) %
                                               cx.f.irrelevantProcedures.size()]);
            // trivially cheap
        }
        r.MPI_Barrier(world);
    }
    r.MPI_Finalize();
}

/// system-time: spends its time in system calls.  The paper's tool
/// FAILS this test -- the default metric set has no system-time
/// metric -- and this reproduction preserves that gap.
void system_time(Rank& r, const Ctx& cx) {
    r.MPI_Init();
    for (int i = 0; i < cx.p.iterations; ++i)
        util::burn_system_time(cx.p.waste_unit_seconds);
    r.MPI_Finalize();
}

/// hot-procedure: a single computational bottleneck procedure plus a
/// pile of irrelevant procedures that use essentially no time.
void hot_procedure(Rank& r, const Ctx& cx) {
    r.MPI_Init();
    instr::Registry& reg = r.world().registry();
    for (int i = 0; i < cx.p.iterations; ++i) {
        {
            instr::FunctionGuard g(reg, cx.f.bottleneckProcedure);
            util::burn_thread_cpu(cx.p.waste_unit_seconds);
        }
        for (instr::FuncId irr : cx.f.irrelevantProcedures) {
            instr::FunctionGuard g(reg, irr);
            // does nothing, as in Grindstone
        }
    }
    r.MPI_Finalize();
}

/// sstwod: the 2-D Poisson solver from "Using MPI" (1-D row
/// decomposition); its known communication bottleneck is the ghost
/// exchange in exchng2 (MPI_Sendrecv) plus the MPI_Allreduce
/// convergence check.
void sstwod(Rank& r, const Ctx& cx) {
    r.MPI_Init();
    const Comm world = r.MPI_COMM_WORLD();
    int me = 0, n = 0;
    r.MPI_Comm_rank(world, &me);
    r.MPI_Comm_size(world, &n);
    const int nx = cx.p.grid_n;
    // Uneven row split induces the load imbalance that surfaces as
    // synchronization waiting in the exchanges.
    const int base_rows = nx / n;
    const int rows = base_rows + (me == 0 ? nx % n : 0) + 2;  // +2 ghost rows
    std::vector<double> u(static_cast<std::size_t>(rows) * nx, 0.0);
    std::vector<double> unew = u;
    if (me == 0)
        for (int j = 0; j < nx; ++j) u[static_cast<std::size_t>(j)] = 1.0;

    const int up = me > 0 ? me - 1 : MPI_PROC_NULL;
    const int down = me < n - 1 ? me + 1 : MPI_PROC_NULL;
    instr::Registry& reg = r.world().registry();
    for (int it = 0; it < cx.p.iterations; ++it) {
        {
            instr::FunctionGuard g(reg, cx.f.exchng2);
            Status st;
            r.MPI_Sendrecv(&u[static_cast<std::size_t>(nx)], nx, MPI_DOUBLE, up, 10,
                           &u[static_cast<std::size_t>((rows - 1)) * nx], nx,
                           MPI_DOUBLE, down, 10, world, &st);
            r.MPI_Sendrecv(&u[static_cast<std::size_t>(rows - 2) * nx], nx, MPI_DOUBLE,
                           down, 11, &u[0], nx, MPI_DOUBLE, up, 11, world, &st);
        }
        double diff = 0.0;
        {
            instr::FunctionGuard g(reg, cx.f.compute_sweep);
            for (int i = 1; i < rows - 1; ++i) {
                for (int j = 1; j < nx - 1; ++j) {
                    const std::size_t at = static_cast<std::size_t>(i) * nx + j;
                    unew[at] = 0.25 * (u[at - 1] + u[at + 1] +
                                       u[at - static_cast<std::size_t>(nx)] +
                                       u[at + static_cast<std::size_t>(nx)]);
                    diff += (unew[at] - u[at]) * (unew[at] - u[at]);
                }
            }
            std::swap(u, unew);
        }
        double global_diff = 0.0;
        r.MPI_Allreduce(&diff, &global_diff, 1, MPI_DOUBLE, MPI_SUM, world);
    }
    r.MPI_Finalize();
}

}  // namespace

void register_mpi1(simmpi::World& world, const std::shared_ptr<Ctx>& cx) {
    auto reg = [&](const char* name, void (*fn)(Rank&, const Ctx&)) {
        world.register_program(
            name, [cx, fn](Rank& r, const std::vector<std::string>&) { fn(r, *cx); });
    };
    reg(kSmallMessages, small_messages);
    reg(kBigMessage, big_message);
    reg(kWrongWay, wrong_way);
    reg(kIntensiveServer, intensive_server);
    reg(kRandomBarrier, random_barrier);
    reg(kDiffuseProcedure, diffuse_procedure);
    reg(kSystemTime, system_time);
    reg(kHotProcedure, hot_procedure);
    reg(kSstwod, sstwod);
}

}  // namespace m2p::ppm::detail
