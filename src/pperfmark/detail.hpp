// Internal shared state for the PPerfMark program implementations.
#pragma once

#include <memory>

#include "pperfmark/pperfmark.hpp"
#include "simmpi/rank.hpp"

namespace m2p::ppm::detail {

/// Per-world context captured by every program lambda.
struct Ctx {
    Params p;
    AppFuncs f;
};

/// Registers the MPI-1 programs (small-messages .. sstwod).
void register_mpi1(simmpi::World& world, const std::shared_ptr<Ctx>& cx);
/// Registers the MPI-2 programs (allcount .. oned + children).
void register_mpi2(simmpi::World& world, const std::shared_ptr<Ctx>& cx);
/// Registers the MPI-I/O extension programs (io-stripes, io-bound).
void register_io(simmpi::World& world, const std::shared_ptr<Ctx>& cx);

/// PPerfMark's computational bottleneck helper: burns
/// `units * waste_unit_seconds` of CPU inside the waste_time function.
void waste_time(simmpi::Rank& r, const Ctx& cx, int units);

}  // namespace m2p::ppm::detail
