// The MPI-2 PPerfMark programs (paper Table 3) plus the passive-target
// extension the paper defers (winlock-sync) and the "Using MPI-2" Oned
// solver.
#include <cstring>
#include <chrono>

#include "pperfmark/detail.hpp"
#include "simmpi/sched.hpp"
#include "util/clock.hpp"

namespace m2p::ppm::detail {

namespace {

using simmpi::Comm;
using simmpi::Group;
using simmpi::Rank;
using simmpi::Status;
using simmpi::Win;
using simmpi::MPI_BYTE;
using simmpi::MPI_COMM_NULL;
using simmpi::MPI_DOUBLE;
using simmpi::MPI_GROUP_NULL;
using simmpi::MPI_INFO_NULL;
using simmpi::MPI_INT;
using simmpi::MPI_LOCK_EXCLUSIVE;
using simmpi::MPI_PROC_NULL;
using simmpi::MPI_SUCCESS;
using simmpi::MPI_SUM;
using simmpi::MPI_WIN_NULL;

/// allcount: a known number of Puts, Gets and Accumulates moving a
/// known number of bytes through one window under fence epochs.
void allcount(Rank& r, const Ctx& cx) {
    r.MPI_Init();
    const Comm world = r.MPI_COMM_WORLD();
    int me = 0, n = 0;
    r.MPI_Comm_rank(world, &me);
    r.MPI_Comm_size(world, &n);
    const int bytes = cx.p.rma_bytes;
    std::vector<std::int32_t> mem(static_cast<std::size_t>(bytes) / 4, 0);
    std::vector<std::int32_t> local(mem.size(), 1);
    Win win = MPI_WIN_NULL;
    r.MPI_Win_create(mem.data(), bytes, 1, MPI_INFO_NULL, world, &win);
    r.MPI_Win_set_name(win, "AllcountWindow");
    const int count = static_cast<int>(mem.size());
    for (int e = 0; e < cx.p.epochs; ++e) {
        r.MPI_Win_fence(0, win);
        if (me != 0) {
            for (int i = 0; i < cx.p.rma_ops_per_epoch; ++i) {
                r.MPI_Put(local.data(), count, MPI_INT, 0, 0, count, MPI_INT, win);
                r.MPI_Get(local.data(), count, MPI_INT, 0, 0, count, MPI_INT, win);
                r.MPI_Accumulate(local.data(), count, MPI_INT, 0, 0, count, MPI_INT,
                                 MPI_SUM, win);
            }
        }
        r.MPI_Win_fence(0, win);
    }
    r.MPI_Win_free(&win);
    r.MPI_Finalize();
}

/// wincreate-blast: creates and deallocates many windows quickly; the
/// tool must detect every one even though the implementation reuses
/// window identifiers (hence the N-M resource ids, paper 4.2.1).
void wincreate_blast(Rank& r, const Ctx& cx) {
    r.MPI_Init();
    const Comm world = r.MPI_COMM_WORLD();
    std::vector<char> mem(256, 0);
    for (int i = 0; i < cx.p.win_blast_count; ++i) {
        Win win = MPI_WIN_NULL;
        r.MPI_Win_create(mem.data(), static_cast<std::int64_t>(mem.size()), 1,
                         MPI_INFO_NULL, world, &win);
        if (i % 4 == 0) r.MPI_Win_set_name(win, "blast" + std::to_string(i));
        r.MPI_Win_free(&win);
    }
    r.MPI_Finalize();
}

/// winfence-sync: rank 0 is late to every MPI_Win_fence because it
/// wastes time first; the others accrue fence waiting time.
void winfence_sync(Rank& r, const Ctx& cx) {
    r.MPI_Init();
    const Comm world = r.MPI_COMM_WORLD();
    int me = 0;
    r.MPI_Comm_rank(world, &me);
    std::vector<char> mem(1024, 0);
    char byte = 1;
    Win win = MPI_WIN_NULL;
    r.MPI_Win_create(mem.data(), static_cast<std::int64_t>(mem.size()), 1,
                     MPI_INFO_NULL, world, &win);
    for (int i = 0; i < cx.p.iterations; ++i) {
        if (me == 0) waste_time(r, cx, cx.p.time_to_waste);
        if (me != 0) r.MPI_Put(&byte, 1, MPI_BYTE, 0, 0, 1, MPI_BYTE, win);
        r.MPI_Win_fence(0, win);
    }
    r.MPI_Win_free(&win);
    r.MPI_Finalize();
}

/// winscpw-sync: start/complete + post/wait synchronization with an
/// artificial bottleneck in the target (rank 0) between MPI_Win_wait
/// and MPI_Win_post; the origins wait in MPI_Win_start (LAM) or
/// MPI_Win_complete (MPICH2) -- the implementation freedom the MPI-2
/// standard allows (paper 5.2.1.1).
void winscpw_sync(Rank& r, const Ctx& cx) {
    r.MPI_Init();
    const Comm world = r.MPI_COMM_WORLD();
    int me = 0, n = 0;
    r.MPI_Comm_rank(world, &me);
    r.MPI_Comm_size(world, &n);
    std::vector<char> mem(1024, 0);
    char byte = 7;
    Win win = MPI_WIN_NULL;
    r.MPI_Win_create(mem.data(), static_cast<std::int64_t>(mem.size()), 1,
                     MPI_INFO_NULL, world, &win);
    r.MPI_Win_set_name(win, "ScpwWindow");
    Group world_group = MPI_GROUP_NULL;
    r.MPI_Comm_group(world, &world_group);
    if (me == 0) {
        std::vector<int> origins;
        for (int i = 1; i < n; ++i) origins.push_back(i);
        Group origin_group = MPI_GROUP_NULL;
        r.MPI_Group_incl(world_group, static_cast<int>(origins.size()), origins.data(),
                         &origin_group);
        for (int i = 0; i < cx.p.iterations; ++i) {
            r.MPI_Win_post(origin_group, 0, win);
            r.MPI_Win_wait(win);
            waste_time(r, cx, cx.p.time_to_waste);
        }
        r.MPI_Group_free(&origin_group);
    } else {
        const int zero = 0;
        Group target_group = MPI_GROUP_NULL;
        r.MPI_Group_incl(world_group, 1, &zero, &target_group);
        for (int i = 0; i < cx.p.iterations; ++i) {
            r.MPI_Win_start(target_group, 0, win);
            r.MPI_Put(&byte, 1, MPI_BYTE, 0, static_cast<std::int64_t>(me), 1, MPI_BYTE,
                      win);
            r.MPI_Win_complete(win);
        }
        r.MPI_Group_free(&target_group);
    }
    r.MPI_Group_free(&world_group);
    r.MPI_Win_free(&win);
    r.MPI_Finalize();
}

/// winlock-sync (extension): passive-target contention -- every
/// process locks rank 0's window exclusively and holds it while
/// computing, so the others block inside MPI_Win_lock.
void winlock_sync(Rank& r, const Ctx& cx) {
    r.MPI_Init();
    const Comm world = r.MPI_COMM_WORLD();
    int me = 0;
    r.MPI_Comm_rank(world, &me);
    std::vector<std::int32_t> mem(256, 0);
    std::int32_t one = 1;
    Win win = MPI_WIN_NULL;
    r.MPI_Win_create(mem.data(), static_cast<std::int64_t>(mem.size() * 4), 4,
                     MPI_INFO_NULL, world, &win);
    for (int i = 0; i < cx.p.iterations; ++i) {
        r.MPI_Win_lock(MPI_LOCK_EXCLUSIVE, 0, 0, win);
        r.MPI_Accumulate(&one, 1, MPI_INT, 0, 0, 1, MPI_INT, MPI_SUM, win);
        if (me == 0) waste_time(r, cx, cx.p.time_to_waste);
        r.MPI_Win_unlock(0, win);
        // Give waiters a chance to acquire: on an oversubscribed host
        // the releasing thread would otherwise re-lock before any
        // waiter is scheduled (real cluster nodes run one rank per
        // CPU, so this starvation cannot occur there).
        simmpi::sched::sleep_for(std::chrono::microseconds(me == 0 ? 200 : 50));
    }
    r.MPI_Win_free(&win);
    r.MPI_Finalize();
}

/// spawn-count: spawns a known number of child processes that simply
/// exit; the tool must detect every new process at run time.
void spawn_count(Rank& r, const Ctx& cx) {
    r.MPI_Init();
    const Comm world = r.MPI_COMM_WORLD();
    for (int round = 0; round < cx.p.spawn_rounds; ++round) {
        Comm inter = MPI_COMM_NULL;
        std::vector<int> errcodes;
        r.MPI_Comm_spawn(kSpawnChild, {}, cx.p.spawn_children, MPI_INFO_NULL, 0, world,
                         &inter, &errcodes);
    }
    r.MPI_Finalize();
}

void spawn_child(Rank& r, const Ctx&) {
    r.MPI_Init();
    Comm parent = MPI_COMM_NULL;
    r.MPI_Comm_get_parent(&parent);
    r.MPI_Finalize();
}

/// spawn-sync: parent spawns children, then passes messages with them
/// over the intercommunicator; the parent wastes time before each
/// reply (children bottleneck in MPI_Recv inside childFunction; the
/// parent is CPU bound in parentFunction).
void spawn_sync(Rank& r, const Ctx& cx) {
    r.MPI_Init();
    const Comm world = r.MPI_COMM_WORLD();
    Comm inter = MPI_COMM_NULL;
    std::vector<int> errcodes;
    r.MPI_Comm_spawn(kSpawnSyncChild, {}, cx.p.spawn_children, MPI_INFO_NULL, 0, world,
                     &inter, &errcodes);
    if (inter == MPI_COMM_NULL) {
        r.MPI_Finalize();
        return;
    }
    r.MPI_Comm_set_name(inter, "Parent&Child");
    instr::Registry& reg = r.world().registry();
    int me = 0;
    r.MPI_Comm_rank(world, &me);
    if (me == 0) {
        char req = 0, rep = 1;
        const long long total =
            static_cast<long long>(cx.p.iterations) * cx.p.spawn_children;
        for (long long i = 0; i < total; ++i) {
            // Guard per request so dynamically-inserted instrumentation
            // observes entries even when it arrives mid-run (Paradyn
            // handles already-on-stack frames with stack walks; our
            // substrate sees the next entry instead).
            instr::FunctionGuard g(reg, cx.f.parentFunction);
            Status st;
            r.MPI_Recv(&req, 1, MPI_BYTE, simmpi::MPI_ANY_SOURCE, 0, inter, &st);
            util::burn_thread_cpu(cx.p.waste_unit_seconds);
            r.MPI_Send(&rep, 1, MPI_BYTE, st.MPI_SOURCE, 1, inter);
        }
    }
    r.MPI_Finalize();
}

void spawn_sync_child(Rank& r, const Ctx& cx) {
    r.MPI_Init();
    Comm parent = MPI_COMM_NULL;
    r.MPI_Comm_get_parent(&parent);
    if (parent == MPI_COMM_NULL) {
        r.MPI_Finalize();
        return;
    }
    r.MPI_Comm_set_name(parent, "toParentGroup");
    instr::Registry& reg = r.world().registry();
    {
        char req = 0, rep = 0;
        for (int i = 0; i < cx.p.iterations; ++i) {
            instr::FunctionGuard g(reg, cx.f.childFunction);
            r.MPI_Send(&req, 1, MPI_BYTE, 0, 0, parent);
            r.MPI_Recv(&rep, 1, MPI_BYTE, 0, 1, parent, nullptr);
        }
    }
    r.MPI_Finalize();
}

/// spawnwin-sync: parent spawns children, merges the intercomm into an
/// intracommunicator, creates an RMA window over it and fences with an
/// artificial bottleneck in the parent (children wait in
/// MPI_Win_fence; the parent is CPU bound in parentFunction).
void spawnwin_common(Rank& r, const Ctx& cx, Comm merged, bool is_parent) {
    std::vector<char> mem(1024, 0);
    char byte = 3;
    Win win = MPI_WIN_NULL;
    r.MPI_Win_create(mem.data(), static_cast<std::int64_t>(mem.size()), 1,
                     MPI_INFO_NULL, merged, &win);
    if (is_parent) r.MPI_Win_set_name(win, "ParentChildWindow");
    instr::Registry& reg = r.world().registry();
    for (int i = 0; i < cx.p.iterations; ++i) {
        if (is_parent) {
            instr::FunctionGuard g(reg, cx.f.parentFunction);
            util::burn_thread_cpu(cx.p.time_to_waste * cx.p.waste_unit_seconds);
        } else {
            r.MPI_Put(&byte, 1, MPI_BYTE, 0, 0, 1, MPI_BYTE, win);
        }
        r.MPI_Win_fence(0, win);
    }
    r.MPI_Win_free(&win);
}

void spawnwin_sync(Rank& r, const Ctx& cx) {
    r.MPI_Init();
    const Comm world = r.MPI_COMM_WORLD();
    Comm inter = MPI_COMM_NULL;
    std::vector<int> errcodes;
    r.MPI_Comm_spawn(kSpawnwinChild, {}, cx.p.spawn_children, MPI_INFO_NULL, 0, world,
                     &inter, &errcodes);
    if (inter == MPI_COMM_NULL) {
        r.MPI_Finalize();
        return;
    }
    r.MPI_Comm_set_name(inter, "toChildGroup");
    Comm merged = MPI_COMM_NULL;
    r.MPI_Intercomm_merge(inter, /*high=*/false, &merged);
    r.MPI_Comm_set_name(merged, "Parent&Child");
    int merged_rank = 0;
    r.MPI_Comm_rank(merged, &merged_rank);
    spawnwin_common(r, cx, merged, merged_rank == 0);
    r.MPI_Finalize();
}

void spawnwin_child(Rank& r, const Ctx& cx) {
    r.MPI_Init();
    Comm parent = MPI_COMM_NULL;
    r.MPI_Comm_get_parent(&parent);
    if (parent == MPI_COMM_NULL) {
        r.MPI_Finalize();
        return;
    }
    r.MPI_Comm_set_name(parent, "toParentGroup");
    Comm merged = MPI_COMM_NULL;
    r.MPI_Intercomm_merge(parent, /*high=*/true, &merged);
    int merged_rank = 0;
    r.MPI_Comm_rank(merged, &merged_rank);
    spawnwin_common(r, cx, merged, merged_rank == 0);
    r.MPI_Finalize();
}

/// oned: the "Using MPI-2" 1-D Poisson solver whose ghost exchange
/// (exchng1) uses MPI_Put under MPI_Win_fence -- its known bottleneck
/// is fence synchronization inside exchng1 (paper Fig 22).
void oned(Rank& r, const Ctx& cx) {
    r.MPI_Init();
    const Comm world = r.MPI_COMM_WORLD();
    int me = 0, n = 0;
    r.MPI_Comm_rank(world, &me);
    r.MPI_Comm_size(world, &n);
    const int nx = cx.p.grid_n;
    const int base_rows = nx / n;
    const int rows = base_rows + (me == 0 ? nx % n : 0) + 2;
    std::vector<double> u(static_cast<std::size_t>(rows) * nx, 0.0);
    std::vector<double> unew = u;
    Win win = MPI_WIN_NULL;
    r.MPI_Win_create(u.data(), static_cast<std::int64_t>(u.size() * sizeof(double)),
                     sizeof(double), MPI_INFO_NULL, world, &win);
    r.MPI_Win_set_name(win, "OnedGhostWindow");
    const int up = me > 0 ? me - 1 : MPI_PROC_NULL;
    const int down = me < n - 1 ? me + 1 : MPI_PROC_NULL;
    instr::Registry& reg = r.world().registry();
    for (int it = 0; it < cx.p.iterations; ++it) {
        {
            instr::FunctionGuard g(reg, cx.f.exchng1);
            r.MPI_Win_fence(0, win);
            // Put our first interior row into the upper neighbour's
            // bottom ghost row, and our last interior row into the
            // lower neighbour's top ghost row.
            if (up != MPI_PROC_NULL) {
                const std::int64_t disp =
                    static_cast<std::int64_t>((base_rows + (up == 0 ? nx % n : 0) + 1)) *
                    nx;
                r.MPI_Put(&u[static_cast<std::size_t>(nx)], nx, MPI_DOUBLE, up, disp,
                          nx, MPI_DOUBLE, win);
            }
            if (down != MPI_PROC_NULL)
                r.MPI_Put(&u[static_cast<std::size_t>(rows - 2) * nx], nx, MPI_DOUBLE,
                          down, 0, nx, MPI_DOUBLE, win);
            r.MPI_Win_fence(0, win);
        }
        {
            instr::FunctionGuard g(reg, cx.f.compute_sweep);
            for (int i = 1; i < rows - 1; ++i)
                for (int j = 1; j < nx - 1; ++j) {
                    const std::size_t at = static_cast<std::size_t>(i) * nx + j;
                    unew[at] = 0.25 * (u[at - 1] + u[at + 1] +
                                       u[at - static_cast<std::size_t>(nx)] +
                                       u[at + static_cast<std::size_t>(nx)]);
                }
            // Copy back rather than swap: the window is registered on u.
            std::memcpy(u.data(), unew.data(), u.size() * sizeof(double));
        }
    }
    r.MPI_Win_free(&win);
    r.MPI_Finalize();
}

}  // namespace

void register_mpi2(simmpi::World& world, const std::shared_ptr<Ctx>& cx) {
    auto reg = [&](const char* name, void (*fn)(Rank&, const Ctx&)) {
        world.register_program(
            name, [cx, fn](Rank& r, const std::vector<std::string>&) { fn(r, *cx); });
    };
    reg(kAllcount, allcount);
    reg(kWincreateBlast, wincreate_blast);
    reg(kWinfenceSync, winfence_sync);
    reg(kWinscpwSync, winscpw_sync);
    reg(kWinlockSync, winlock_sync);
    reg(kSpawnCount, spawn_count);
    reg(kSpawnChild, spawn_child);
    reg(kSpawnSync, spawn_sync);
    reg(kSpawnSyncChild, spawn_sync_child);
    reg(kSpawnwinSync, spawnwin_sync);
    reg(kSpawnwinChild, spawnwin_child);
    reg(kOned, oned);
}

}  // namespace m2p::ppm::detail
