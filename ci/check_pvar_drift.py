#!/usr/bin/env python3
"""Diff pvar totals sampled during a bench smoke against a committed envelope.

The CI perf step runs m2p-pvar-sample --json alongside a bench --smoke and
feeds the captured JSON-lines here.  The last complete snapshot holds the
final counter totals of the run; the smoke workloads are deterministic, so
op/byte counters are too, and drift in them means the workload (or the
counting) changed.

  check_pvar_drift.py record <samples.jsonl> <envelope.json>
  check_pvar_drift.py check  <samples.jsonl> <envelope.json>

`check` never fails the build: it emits GitHub ::warning:: annotations for
counters drifting more than DRIFT_TOLERANCE from the envelope and ::notice::
lines for counters that appeared or vanished.  Time-derived and
sampler-self counters are excluded -- wall time is not deterministic.
"""

import json
import sys

DRIFT_TOLERANCE = 0.20

# Substrings that mark a counter as timing- or sampling-dependent: those
# legitimately vary run to run and would only produce alert fatigue.
NONDETERMINISTIC = ("_ns", ".ns", "wait", "pvar.export.", "spurious")


def deterministic(name: str) -> bool:
    return not any(tok in name for tok in NONDETERMINISTIC)


def last_counters(samples_path: str) -> dict:
    """The counters map of the last well-formed snapshot line."""
    best = None
    with open(samples_path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                continue  # killed mid-write; a torn tail line is expected
            if isinstance(obj, dict) and "counters" in obj:
                best = obj
    if best is None:
        raise SystemExit("no snapshot lines with counters in " + samples_path)
    return {k: v for k, v in best["counters"].items() if deterministic(k)}


def main() -> int:
    if len(sys.argv) != 4 or sys.argv[1] not in ("record", "check"):
        print(__doc__, file=sys.stderr)
        return 1
    mode, samples_path, envelope_path = sys.argv[1:4]
    counters = last_counters(samples_path)

    if mode == "record":
        with open(envelope_path, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "schema": "m2p-pvar-envelope-v1",
                    "tolerance": DRIFT_TOLERANCE,
                    "counters": dict(sorted(counters.items())),
                },
                fh,
                indent=2,
            )
            fh.write("\n")
        print(f"recorded {len(counters)} counters to {envelope_path}")
        return 0

    with open(envelope_path, "r", encoding="utf-8") as fh:
        envelope = json.load(fh)
    expected = envelope["counters"]
    tolerance = float(envelope.get("tolerance", DRIFT_TOLERANCE))

    drifted = 0
    for name in sorted(set(expected) | set(counters)):
        if name not in counters:
            print(f"::notice::pvar {name} vanished (envelope has {expected[name]})")
            continue
        if name not in expected:
            print(f"::notice::pvar {name} is new (={counters[name]}); "
                  f"re-record the envelope to start tracking it")
            continue
        old, new = expected[name], counters[name]
        drift = abs(new - old) / max(abs(old), 1)
        if drift > tolerance:
            drifted += 1
            print(f"::warning::pvar {name} drifted {drift:.0%} "
                  f"(envelope {old}, sampled {new}) -- "
                  f"perf-relevant workload change?")
    print(f"checked {len(expected)} counters, {drifted} over "
          f"{tolerance:.0%} tolerance")
    return 0  # advisory only: drift warns, never fails the build


if __name__ == "__main__":
    sys.exit(main())
