// Pvar registry lifecycle + concurrency properties.
//
// The registry's contract is MPI_T-shaped: providers register named
// variables once, readers attach by name or glob, and a snapshot pass
// produces a consistent epoch-stamped view without ever stopping the
// writers.  The hammer cases below are the contract's teeth: snapshots
// taken while providers churn registrations and writers bump counters
// must stay well-formed, monotone per variable, and must preserve the
// registration-order invariant (delivered <= queued) that the simmpi
// transport plane relies on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "pvar/registry.hpp"

namespace m2p::pvar {
namespace {

TEST(PvarRegistry, AddFindReadDescribe) {
    Registry reg;
    std::atomic<std::uint64_t> src{41};
    const VarId id = reg.add_counter(
        "plane.alpha.calls",
        [&src] { return src.load(std::memory_order_relaxed); }, "calls",
        "alpha-plane call count");
    ASSERT_NE(id, kInvalidVar);
    EXPECT_EQ(reg.find("plane.alpha.calls"), id);
    EXPECT_EQ(reg.find("no.such.var"), kInvalidVar);
    EXPECT_TRUE(reg.alive(id));
    EXPECT_EQ(reg.read(id), 41u);
    src.store(42, std::memory_order_relaxed);
    EXPECT_EQ(reg.read(id), 42u);

    const Desc* d = reg.describe(id);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->name, "plane.alpha.calls");
    EXPECT_EQ(d->cls, Class::Counter);
    EXPECT_EQ(d->unit, "calls");
}

TEST(PvarRegistry, DuplicateLiveNameRejectedAndReusableAfterRemove) {
    Registry reg;
    const VarId a = reg.add_counter("dup.name", [] { return std::uint64_t{1}; });
    ASSERT_NE(a, kInvalidVar);
    // A second registration under a live name must be refused -- two
    // providers exporting the same variable is a bug, not a merge.
    EXPECT_EQ(reg.add_counter("dup.name", [] { return std::uint64_t{2}; }),
              kInvalidVar);

    ASSERT_TRUE(reg.remove(a));
    EXPECT_FALSE(reg.alive(a));
    EXPECT_FALSE(reg.remove(a));  // tombstones only die once
    EXPECT_EQ(reg.find("dup.name"), kInvalidVar);

    // The name is reusable, but the id is fresh: ids are never recycled,
    // so a stale attached id can never silently read a different var.
    const VarId b = reg.add_counter("dup.name", [] { return std::uint64_t{3}; });
    ASSERT_NE(b, kInvalidVar);
    EXPECT_NE(b, a);
    EXPECT_EQ(reg.read(b), 3u);
}

TEST(PvarRegistry, GlobMatching) {
    EXPECT_TRUE(Registry::glob_match("*", "anything.at.all"));
    EXPECT_TRUE(Registry::glob_match("simmpi.mailbox.*", "simmpi.mailbox.eager_msgs"));
    EXPECT_FALSE(Registry::glob_match("simmpi.mailbox.*", "simmpi.mail"));
    EXPECT_TRUE(Registry::glob_match("*.dropped", "trace.ring.dropped"));
    EXPECT_FALSE(Registry::glob_match("*.dropped", "trace.ring.kept"));
    EXPECT_TRUE(Registry::glob_match("rma.table1.win?.put_ops", "rma.table1.win3.put_ops"));
    EXPECT_FALSE(Registry::glob_match("rma.table1.win?.put_ops", "rma.table1.win31.put_ops"));
    EXPECT_TRUE(Registry::glob_match("a*b*c", "a-x-b-y-c"));
    EXPECT_FALSE(Registry::glob_match("a*b*c", "a-x-c-y-b"));
    EXPECT_TRUE(Registry::glob_match("", ""));
    EXPECT_FALSE(Registry::glob_match("", "x"));
}

TEST(PvarRegistry, AttachByGlobSkipsDeadVars) {
    Registry reg;
    const VarId a = reg.add_counter("p.one", [] { return std::uint64_t{1}; });
    const VarId b = reg.add_counter("p.two", [] { return std::uint64_t{2}; });
    const VarId c = reg.add_counter("q.three", [] { return std::uint64_t{3}; });
    ASSERT_NE(a, kInvalidVar);
    ASSERT_NE(b, kInvalidVar);
    ASSERT_NE(c, kInvalidVar);

    std::vector<VarId> got = reg.attach("p.*");
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], a);
    EXPECT_EQ(got[1], b);

    ASSERT_TRUE(reg.remove(a));
    got = reg.attach("p.*");
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], b);

    EXPECT_EQ(reg.attach("*").size(), 2u);
}

TEST(PvarRegistry, OwnedCounterStorage) {
    Registry reg;
    std::atomic<std::uint64_t>* cell = reg.add_owned_counter("owned.counter");
    ASSERT_NE(cell, nullptr);
    cell->fetch_add(7, std::memory_order_relaxed);
    const VarId id = reg.find("owned.counter");
    ASSERT_NE(id, kInvalidVar);
    EXPECT_EQ(reg.read(id), 7u);
    // Duplicate owned name is refused the same way.
    EXPECT_EQ(reg.add_owned_counter("owned.counter"), nullptr);
}

TEST(PvarRegistry, SnapshotStampsMonotoneEpochsAndSelectedIds) {
    Registry reg;
    std::atomic<std::uint64_t>* a = reg.add_owned_counter("s.a");
    std::atomic<std::uint64_t>* b = reg.add_owned_counter("s.b");
    a->store(10);
    b->store(20);

    const Snapshot s1 = reg.snapshot();
    ASSERT_EQ(s1.samples.size(), 2u);
    EXPECT_EQ(s1.samples[0].value, 10u);
    EXPECT_EQ(s1.samples[1].value, 20u);

    a->store(11);
    const Snapshot s2 = reg.snapshot({reg.find("s.a")});
    ASSERT_EQ(s2.samples.size(), 1u);
    EXPECT_EQ(s2.samples[0].value, 11u);
    EXPECT_GT(s2.epoch, s1.epoch);
    EXPECT_EQ(reg.epoch(), s2.epoch);

    // cached() serves the last snapshot-published value without
    // re-polling the reader.
    const CachedSample cs = reg.cached(reg.find("s.b"));
    EXPECT_EQ(cs.value, 20u);
    EXPECT_EQ(cs.epoch, s1.epoch);
}

TEST(PvarRegistry, ProviderScopeDetachesOnDestruction) {
    Registry reg;
    {
        ProviderScope scope(reg);
        scope.add_counter("scoped.one", [] { return std::uint64_t{1}; });
        scope.add_counter("scoped.two", [] { return std::uint64_t{2}; });
        EXPECT_EQ(reg.attach("scoped.*").size(), 2u);
    }
    EXPECT_TRUE(reg.attach("scoped.*").empty());
    EXPECT_EQ(reg.find("scoped.one"), kInvalidVar);
}

// ---------------------------------------------------------------------------
// The hammer: snapshots while writers bump and providers churn.  This
// is the case the TSAN job runs -- every seqlock and publication edge
// in the registry is exercised here.
// ---------------------------------------------------------------------------

TEST(PvarRegistry, SnapshotWhileChurningStaysConsistent) {
    Registry reg;

    // The ordering invariant the transport plane depends on: delivered
    // is registered BEFORE queued, writers bump queued first, so every
    // snapshot (which polls in id order) must see delivered <= queued.
    std::atomic<std::uint64_t>* delivered = reg.add_owned_counter("inv.delivered");
    std::atomic<std::uint64_t>* queued = reg.add_owned_counter("inv.queued");
    ASSERT_NE(delivered, nullptr);
    ASSERT_NE(queued, nullptr);
    const VarId id_delivered = reg.find("inv.delivered");
    const VarId id_queued = reg.find("inv.queued");

    constexpr int kWriters = 4;
    constexpr int kChurners = 2;
    constexpr std::uint64_t kPerWriter = 40000;
    std::atomic<bool> done{false};

    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&] {
            for (std::uint64_t i = 0; i < kPerWriter; ++i) {
                queued->fetch_add(1, std::memory_order_relaxed);
                delivered->fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    // Churners add/remove transient vars the whole time, forcing the
    // snapshot pass to race registration, tombstoning, and id growth.
    std::vector<std::thread> churners;
    for (int c = 0; c < kChurners; ++c) {
        churners.emplace_back([&reg, c, &done] {
            std::uint64_t round = 0;
            while (!done.load(std::memory_order_acquire)) {
                ProviderScope scope(reg);
                for (int k = 0; k < 8; ++k) {
                    const std::string name = "churn." + std::to_string(c) + "." +
                                             std::to_string(k);
                    scope.add_counter(name, [round] { return round; });
                }
                scope.reset();
                ++round;
            }
        });
    }

    std::uint64_t last_epoch = 0;
    std::uint64_t last_delivered = 0, last_queued = 0;
    int passes = 0;
    // Keep snapshotting for a few extra passes after the writers
    // finish: under TSAN on a small box they can complete before the
    // second pass, and the invariants are worth checking more than
    // once regardless.
    while (!done.load(std::memory_order_acquire) || passes < 4) {
        const Snapshot snap = reg.snapshot();
        EXPECT_GT(snap.epoch, last_epoch);
        last_epoch = snap.epoch;
        std::uint64_t d = 0, q = 0;
        bool have_d = false, have_q = false;
        for (const Sample& s : snap.samples) {
            if (s.id == id_delivered) { d = s.value; have_d = true; }
            if (s.id == id_queued) { q = s.value; have_q = true; }
        }
        ASSERT_TRUE(have_d);
        ASSERT_TRUE(have_q);
        // Monotone per variable, and the ordering invariant holds
        // inside every snapshot even though writers never pause.
        EXPECT_GE(d, last_delivered);
        EXPECT_GE(q, last_queued);
        EXPECT_LE(d, q);
        last_delivered = d;
        last_queued = q;
        ++passes;
        if (queued->load(std::memory_order_relaxed) >= kWriters * kPerWriter)
            done.store(true, std::memory_order_release);
    }
    for (auto& t : writers) t.join();
    for (auto& t : churners) t.join();
    EXPECT_GT(passes, 1);

    // Quiescent: the final pass reads the exact totals.
    const Snapshot fin = reg.snapshot({id_delivered, id_queued});
    ASSERT_EQ(fin.samples.size(), 2u);
    EXPECT_EQ(fin.samples[0].value, kWriters * kPerWriter);
    EXPECT_EQ(fin.samples[1].value, kWriters * kPerWriter);
}

// cached() readers racing the snapshot publisher: the per-variable
// seqlock must never hand out a torn (value, epoch) pair.  Values are
// published in lockstep with epochs (value == epoch * 3), so any tear
// is detectable arithmetically.
TEST(PvarRegistry, CachedSeqlockNeverTears) {
    Registry reg;
    std::atomic<std::uint64_t> src{0};
    const VarId id = reg.add_counter(
        "seq.var", [&src] { return src.load(std::memory_order_relaxed); });
    ASSERT_NE(id, kInvalidVar);

    std::atomic<bool> done{false};
    std::thread publisher([&] {
        for (std::uint64_t e = 1; e <= 20000; ++e) {
            src.store(e * 3, std::memory_order_relaxed);
            reg.snapshot({id});
        }
        done.store(true, std::memory_order_release);
    });
    std::vector<std::thread> readers;
    for (int r = 0; r < 3; ++r) {
        readers.emplace_back([&] {
            std::uint64_t last_epoch = 0;
            while (!done.load(std::memory_order_acquire)) {
                const CachedSample cs = reg.cached(id);
                if (cs.epoch == 0) continue;  // nothing published yet
                ASSERT_EQ(cs.value, cs.epoch * 3);
                ASSERT_GE(cs.epoch, last_epoch);
                last_epoch = cs.epoch;
            }
        });
    }
    publisher.join();
    for (auto& t : readers) t.join();

    const CachedSample fin = reg.cached(id);
    EXPECT_EQ(fin.value, 60000u);
}

}  // namespace
}  // namespace m2p::pvar
