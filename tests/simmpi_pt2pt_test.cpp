#include <gtest/gtest.h>

#include "simmpi/launcher.hpp"
#include "simmpi/rank.hpp"
#include "simmpi/world.hpp"
#include "util/clock.hpp"

namespace m2p::simmpi {
namespace {

struct Fixture {
    instr::Registry reg;
    World world;
    explicit Fixture(Flavor f = Flavor::Lam, World::Config extra = {})
        : world(reg, [&] {
              extra.flavor = f;
              return extra;
          }()) {}

    /// Runs @p fn on @p n ranks and joins.
    void run(int n, std::function<void(Rank&)> fn, const std::string& name = "prog") {
        world.register_program(name,
                               [fn](Rank& r, const std::vector<std::string>&) { fn(r); });
        LaunchPlan plan;
        for (int i = 0; i < n; ++i)
            plan.placements.push_back("node" + std::to_string(i / 2));
        launch(world, name, {}, plan);
        world.join_all();
    }
};

TEST(Pt2pt, BasicSendRecv) {
    Fixture fx;
    fx.run(2, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        if (me == 0) {
            const int v = 42;
            ASSERT_EQ(r.MPI_Send(&v, 1, MPI_INT, 1, 7, w), MPI_SUCCESS);
        } else {
            int v = 0;
            Status st;
            ASSERT_EQ(r.MPI_Recv(&v, 1, MPI_INT, 0, 7, w, &st), MPI_SUCCESS);
            EXPECT_EQ(v, 42);
            EXPECT_EQ(st.MPI_SOURCE, 0);
            EXPECT_EQ(st.MPI_TAG, 7);
            int count = 0;
            EXPECT_EQ(r.MPI_Get_count(&st, MPI_INT, &count), MPI_SUCCESS);
            EXPECT_EQ(count, 1);
        }
        r.MPI_Finalize();
    });
}

TEST(Pt2pt, AnySourceAndAnyTag) {
    Fixture fx;
    fx.run(3, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0, n = 0;
        r.MPI_Comm_rank(w, &me);
        r.MPI_Comm_size(w, &n);
        if (me == 0) {
            int got = 0;
            for (int i = 0; i < n - 1; ++i) {
                int v = 0;
                Status st;
                r.MPI_Recv(&v, 1, MPI_INT, MPI_ANY_SOURCE, MPI_ANY_TAG, w, &st);
                EXPECT_EQ(v, st.MPI_SOURCE * 10 + st.MPI_TAG);
                ++got;
            }
            EXPECT_EQ(got, n - 1);
        } else {
            const int v = me * 10 + me;
            r.MPI_Send(&v, 1, MPI_INT, 0, me, w);
        }
        r.MPI_Finalize();
    });
}

TEST(Pt2pt, TagMatchingOutOfOrder) {
    Fixture fx;
    fx.run(2, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        if (me == 0) {
            for (int t = 3; t >= 0; --t) r.MPI_Send(&t, 1, MPI_INT, 1, t, w);
        } else {
            for (int t = 0; t < 4; ++t) {
                int v = -1;
                r.MPI_Recv(&v, 1, MPI_INT, 0, t, w, nullptr);
                EXPECT_EQ(v, t);
            }
        }
        r.MPI_Finalize();
    });
}

TEST(Pt2pt, LargeMessageRendezvous) {
    Fixture fx;  // default eager limit 4096
    fx.run(2, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        std::vector<char> buf(100000);
        if (me == 0) {
            for (std::size_t i = 0; i < buf.size(); ++i)
                buf[i] = static_cast<char>(i % 251);
            r.MPI_Send(buf.data(), static_cast<int>(buf.size()), MPI_BYTE, 1, 0, w);
        } else {
            Status st;
            r.MPI_Recv(buf.data(), static_cast<int>(buf.size()), MPI_BYTE, 0, 0, w, &st);
            EXPECT_EQ(st.count_bytes, 100000);
            for (std::size_t i = 0; i < buf.size(); i += 997)
                ASSERT_EQ(buf[i], static_cast<char>(i % 251));
        }
        r.MPI_Finalize();
    });
}

TEST(Pt2pt, ProcNullIsNoOp) {
    Fixture fx;
    fx.run(1, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int v = 5;
        EXPECT_EQ(r.MPI_Send(&v, 1, MPI_INT, MPI_PROC_NULL, 0, w), MPI_SUCCESS);
        Status st;
        EXPECT_EQ(r.MPI_Recv(&v, 1, MPI_INT, MPI_PROC_NULL, 0, w, &st), MPI_SUCCESS);
        EXPECT_EQ(st.MPI_SOURCE, MPI_PROC_NULL);
        EXPECT_EQ(v, 5);
        r.MPI_Finalize();
    });
}

TEST(Pt2pt, TruncationReportsError) {
    Fixture fx;
    fx.run(2, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        if (me == 0) {
            const int big[4] = {1, 2, 3, 4};
            r.MPI_Send(big, 4, MPI_INT, 1, 0, w);
        } else {
            int small[2] = {0, 0};
            Status st;
            EXPECT_EQ(r.MPI_Recv(small, 2, MPI_INT, 0, 0, w, &st), MPI_ERR_COUNT);
            EXPECT_EQ(small[0], 1);
            EXPECT_EQ(small[1], 2);
        }
        r.MPI_Finalize();
    });
}

TEST(Pt2pt, ErrorCodesForBadArguments) {
    Fixture fx;
    fx.run(1, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int v = 0;
        EXPECT_EQ(r.MPI_Send(&v, -1, MPI_INT, 0, 0, w), MPI_ERR_COUNT);
        EXPECT_EQ(r.MPI_Send(&v, 1, MPI_INT, 9, 0, w), MPI_ERR_RANK);
        EXPECT_EQ(r.MPI_Send(&v, 1, MPI_INT, 0, -5, w), MPI_ERR_TAG);
        EXPECT_EQ(r.MPI_Send(&v, 1, MPI_INT, 0, 0, 999), MPI_ERR_COMM);
        EXPECT_EQ(r.MPI_Send(&v, 1, MPI_DATATYPE_NULL, 0, 0, w), MPI_ERR_TYPE);
        EXPECT_EQ(r.MPI_Recv(&v, 1, MPI_INT, 0, MPI_ANY_TAG, 999, nullptr),
                  MPI_ERR_COMM);
        r.MPI_Finalize();
    });
}

TEST(Pt2pt, NonblockingSendRecvWaitall) {
    Fixture fx;
    fx.run(2, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        if (me == 0) {
            int vals[3] = {10, 20, 30};
            Request reqs[3];
            for (int i = 0; i < 3; ++i)
                ASSERT_EQ(r.MPI_Isend(&vals[i], 1, MPI_INT, 1, i, w, &reqs[i]),
                          MPI_SUCCESS);
            Status sts[3];
            ASSERT_EQ(r.MPI_Waitall(3, reqs, sts), MPI_SUCCESS);
            for (int i = 0; i < 3; ++i) EXPECT_EQ(reqs[i], MPI_REQUEST_NULL);
        } else {
            int vals[3] = {0, 0, 0};
            Request reqs[3];
            for (int i = 0; i < 3; ++i)
                ASSERT_EQ(r.MPI_Irecv(&vals[i], 1, MPI_INT, 0, i, w, &reqs[i]),
                          MPI_SUCCESS);
            Status sts[3];
            ASSERT_EQ(r.MPI_Waitall(3, reqs, sts), MPI_SUCCESS);
            EXPECT_EQ(vals[0], 10);
            EXPECT_EQ(vals[1], 20);
            EXPECT_EQ(vals[2], 30);
        }
        r.MPI_Finalize();
    });
}

TEST(Pt2pt, SendrecvExchangesWithoutDeadlock) {
    Fixture fx;
    fx.run(2, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        const int other = 1 - me;
        int mine = me + 100, theirs = -1;
        Status st;
        ASSERT_EQ(r.MPI_Sendrecv(&mine, 1, MPI_INT, other, 0, &theirs, 1, MPI_INT,
                                 other, 0, w, &st),
                  MPI_SUCCESS);
        EXPECT_EQ(theirs, other + 100);
        r.MPI_Finalize();
    });
}

TEST(Pt2pt, EagerFlowControlBlocksFloodingSender) {
    // With a tiny mailbox, a flooding sender must block until the
    // receiver drains -- the mechanism behind PPerfMark
    // small-messages' MPI_Send bottleneck.
    World::Config cfg;
    cfg.mailbox_capacity = 256;
    Fixture fx(Flavor::Lam, cfg);
    fx.run(2, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        char b = 'x';
        if (me == 0) {
            for (int i = 0; i < 2000; ++i) r.MPI_Send(&b, 1, MPI_BYTE, 1, 0, w);
        } else {
            for (int i = 0; i < 2000; ++i) r.MPI_Recv(&b, 1, MPI_BYTE, 0, 0, w, nullptr);
        }
        r.MPI_Finalize();
    });
}

TEST(Pt2pt, CommDupCreatesSeparateContext) {
    Fixture fx;
    fx.run(2, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        Comm dup = MPI_COMM_NULL;
        ASSERT_EQ(r.MPI_Comm_dup(w, &dup), MPI_SUCCESS);
        // Same tag on both comms: messages must not cross contexts.
        if (me == 0) {
            const int a = 1, b = 2;
            r.MPI_Send(&a, 1, MPI_INT, 1, 0, w);
            r.MPI_Send(&b, 1, MPI_INT, 1, 0, dup);
        } else {
            int b = 0, a = 0;
            r.MPI_Recv(&b, 1, MPI_INT, 0, 0, dup, nullptr);
            r.MPI_Recv(&a, 1, MPI_INT, 0, 0, w, nullptr);
            EXPECT_EQ(a, 1);
            EXPECT_EQ(b, 2);
        }
        r.MPI_Finalize();
    });
}

TEST(Pt2pt, WtimeAndProcessorName) {
    Fixture fx;
    fx.run(1, [](Rank& r) {
        r.MPI_Init();
        const double t = r.MPI_Wtime();
        EXPECT_GE(r.MPI_Wtime(), t);
        std::string name;
        EXPECT_EQ(r.MPI_Get_processor_name(&name), MPI_SUCCESS);
        EXPECT_EQ(name, "node0");
        r.MPI_Finalize();
    });
}

TEST(Pt2pt, WorksUnderMpichFlavorToo) {
    Fixture fx(Flavor::Mpich);
    fx.run(2, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        int v = me;
        if (me == 0) {
            r.MPI_Send(&v, 1, MPI_INT, 1, 0, w);
        } else {
            r.MPI_Recv(&v, 1, MPI_INT, 0, 0, w, nullptr);
            EXPECT_EQ(v, 0);
        }
        r.MPI_Finalize();
    });
}

}  // namespace
}  // namespace m2p::simmpi
