#include <gtest/gtest.h>

#include "simmpi/launcher.hpp"
#include "simmpi/rank.hpp"
#include "simmpi/world.hpp"

namespace m2p::simmpi {
namespace {

class CollectivesTest : public ::testing::TestWithParam<Flavor> {
protected:
    void run(int n, std::function<void(Rank&)> fn) {
        instr::Registry reg;
        World::Config cfg;
        cfg.flavor = GetParam();
        World world(reg, cfg);
        world.register_program("prog",
                               [fn](Rank& r, const std::vector<std::string>&) { fn(r); });
        LaunchPlan plan;
        for (int i = 0; i < n; ++i) plan.placements.push_back("node0");
        launch(world, "prog", {}, plan);
        world.join_all();
    }
};

TEST_P(CollectivesTest, BarrierSynchronizesRepeatedly) {
    run(5, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        for (int i = 0; i < 50; ++i) ASSERT_EQ(r.MPI_Barrier(w), MPI_SUCCESS);
        r.MPI_Finalize();
    });
}

TEST_P(CollectivesTest, BarrierOrdersSideEffects) {
    // After rank 0 sets a flag and everyone barriers, every rank must
    // observe the flag.
    static std::atomic<int> flag{0};
    flag = 0;
    run(4, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        if (me == 0) flag.store(1);
        r.MPI_Barrier(w);
        EXPECT_EQ(flag.load(), 1);
        r.MPI_Finalize();
    });
}

TEST_P(CollectivesTest, BcastDeliversFromEveryRoot) {
    run(4, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0, n = 0;
        r.MPI_Comm_rank(w, &me);
        r.MPI_Comm_size(w, &n);
        for (int root = 0; root < n; ++root) {
            int v = me == root ? 1000 + root : -1;
            ASSERT_EQ(r.MPI_Bcast(&v, 1, MPI_INT, root, w), MPI_SUCCESS);
            EXPECT_EQ(v, 1000 + root);
        }
        r.MPI_Finalize();
    });
}

TEST_P(CollectivesTest, ReduceSumAtRoot) {
    run(5, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0, n = 0;
        r.MPI_Comm_rank(w, &me);
        r.MPI_Comm_size(w, &n);
        const int v = me + 1;
        int sum = 0;
        ASSERT_EQ(r.MPI_Reduce(&v, &sum, 1, MPI_INT, MPI_SUM, 0, w), MPI_SUCCESS);
        if (me == 0) EXPECT_EQ(sum, n * (n + 1) / 2);
        r.MPI_Finalize();
    });
}

TEST_P(CollectivesTest, AllreduceSumMaxMin) {
    run(4, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0, n = 0;
        r.MPI_Comm_rank(w, &me);
        r.MPI_Comm_size(w, &n);
        double v = me + 1.0;
        double sum = 0, mx = 0, mn = 0;
        ASSERT_EQ(r.MPI_Allreduce(&v, &sum, 1, MPI_DOUBLE, MPI_SUM, w), MPI_SUCCESS);
        ASSERT_EQ(r.MPI_Allreduce(&v, &mx, 1, MPI_DOUBLE, MPI_MAX, w), MPI_SUCCESS);
        ASSERT_EQ(r.MPI_Allreduce(&v, &mn, 1, MPI_DOUBLE, MPI_MIN, w), MPI_SUCCESS);
        EXPECT_DOUBLE_EQ(sum, n * (n + 1) / 2.0);
        EXPECT_DOUBLE_EQ(mx, n);
        EXPECT_DOUBLE_EQ(mn, 1.0);
        r.MPI_Finalize();
    });
}

TEST_P(CollectivesTest, AllreduceVectorPayload) {
    run(3, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0, n = 0;
        r.MPI_Comm_rank(w, &me);
        r.MPI_Comm_size(w, &n);
        std::vector<std::int32_t> v(64, me);
        std::vector<std::int32_t> out(64, -1);
        ASSERT_EQ(r.MPI_Allreduce(v.data(), out.data(), 64, MPI_INT, MPI_SUM, w),
                  MPI_SUCCESS);
        for (std::int32_t x : out) EXPECT_EQ(x, n * (n - 1) / 2);
        r.MPI_Finalize();
    });
}

TEST_P(CollectivesTest, CollectivesInterleaveWithPt2pt) {
    run(4, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0, n = 0;
        r.MPI_Comm_rank(w, &me);
        r.MPI_Comm_size(w, &n);
        for (int i = 0; i < 20; ++i) {
            if (me == 0) {
                for (int d = 1; d < n; ++d) r.MPI_Send(&i, 1, MPI_INT, d, 3, w);
            } else {
                int v = -1;
                r.MPI_Recv(&v, 1, MPI_INT, 0, 3, w, nullptr);
                EXPECT_EQ(v, i);
            }
            r.MPI_Barrier(w);
            int sum = 0;
            r.MPI_Allreduce(&me, &sum, 1, MPI_INT, MPI_SUM, w);
            EXPECT_EQ(sum, n * (n - 1) / 2);
        }
        r.MPI_Finalize();
    });
}

TEST_P(CollectivesTest, ErrorsOnBadArguments) {
    run(1, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int v = 0, out = 0;
        EXPECT_EQ(r.MPI_Barrier(999), MPI_ERR_COMM);
        EXPECT_EQ(r.MPI_Bcast(&v, 1, MPI_INT, 5, w), MPI_ERR_RANK);
        EXPECT_EQ(r.MPI_Bcast(&v, -1, MPI_INT, 0, w), MPI_ERR_COUNT);
        EXPECT_EQ(r.MPI_Reduce(&v, &out, 1, MPI_INT, MPI_SUM, 9, w), MPI_ERR_RANK);
        EXPECT_EQ(r.MPI_Allreduce(&v, &out, 1, MPI_DATATYPE_NULL, MPI_SUM, w),
                  MPI_ERR_TYPE);
        r.MPI_Finalize();
    });
}

INSTANTIATE_TEST_SUITE_P(Flavors, CollectivesTest,
                         ::testing::Values(Flavor::Lam, Flavor::Mpich),
                         [](const ::testing::TestParamInfo<Flavor>& i) {
                             return i.param == Flavor::Lam ? "Lam" : "Mpich";
                         });

TEST(CollectivesFlavor, MpichBarrierUsesPmpiSendrecv) {
    // The MPICH flavor implements MPI_Barrier on PMPI_Sendrecv -- the
    // structure the paper's PC exposes (Fig 9).  LAM's does not.
    for (const Flavor flavor : {Flavor::Lam, Flavor::Mpich}) {
        instr::Registry reg;
        World::Config cfg;
        cfg.flavor = flavor;
        World world(reg, cfg);
        std::atomic<int> sendrecvs{0};
        world.register_program("prog", [&](Rank& r, const std::vector<std::string>&) {
            r.MPI_Init();
            r.MPI_Barrier(r.MPI_COMM_WORLD());
            r.MPI_Finalize();
        });
        reg.insert(reg.find("PMPI_Sendrecv"), instr::Where::Entry,
                   [&](const instr::CallContext&) { ++sendrecvs; });
        LaunchPlan plan;
        plan.placements = {"node0", "node0", "node0", "node0"};
        launch(world, "prog", {}, plan);
        world.join_all();
        if (flavor == Flavor::Mpich)
            EXPECT_GT(sendrecvs.load(), 0) << "MPICH barrier should use PMPI_Sendrecv";
        else
            EXPECT_EQ(sendrecvs.load(), 0) << "LAM barrier should not";
    }
}

}  // namespace
}  // namespace m2p::simmpi
