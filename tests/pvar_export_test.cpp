// Pvar mmap export: a REAL second process samples a live run.
//
// The export file's generation handshake promises that a torn read is
// detected and retried, never returned.  The headline case forks the
// actual m2p-pvar-sample binary (path baked in via
// M2P_PVAR_SAMPLE_BIN), points it at M2P_PVAR_EXPORT, and runs a
// 256-rank chaos world hammering all five planes underneath it; the
// sampler's --verify summary must report >= 100 distinct torn-free
// snapshots and zero protocol violations.  The remaining cases cover
// the file protocol in-process: the closed final snapshot after rank
// death, resume-in-place run_id bumps, and reader consistency under a
// fast writer.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "pvar/export.hpp"
#include "pvar/registry.hpp"
#include "simmpi/faults.hpp"
#include "simmpi/launcher.hpp"
#include "simmpi/rank.hpp"
#include "simmpi/world.hpp"
#include "trace/flight_recorder.hpp"

namespace m2p::pvar {
namespace {

std::string temp_path(const char* leaf) {
    return ::testing::TempDir() + leaf + "." + std::to_string(::getpid()) + ".pvar";
}

/// Pulls the integer after `"key":` from the sampler's summary line.
std::int64_t json_int(const std::string& line, const std::string& key) {
    const std::size_t at = line.find("\"" + key + "\":");
    if (at == std::string::npos) return -1;
    return std::strtoll(line.c_str() + at + key.size() + 3, nullptr, 10);
}

/// The five-plane chaos workload shared by the sampler cases: pt2pt
/// ring + allreduce/barrier churn + an RMA window, under a seeded
/// fault plan that kills ranks mid-run.  @p dwell_us keeps the world
/// (and its publisher thread) alive after quiescence so a sampler can
/// bank extra snapshots even when chaos collapses the run early.
void run_chaos_world(int nranks, std::uint64_t seed, std::uint64_t* epitaphs_out,
                     std::uint64_t dwell_us = 0) {
    using simmpi::Comm;
    using simmpi::Rank;
    using simmpi::Win;
    using simmpi::World;

    instr::Registry reg;
    World::Config cfg;
    cfg.wait_deadline_seconds = 1.0;
    cfg.join_deadline_seconds = 30.0;
    cfg.faults = simmpi::FaultPlan::chaos(seed, nranks);
    World world(reg, cfg);
    world.register_program("hammer", [nranks](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        std::vector<std::int32_t> mem(4, 0);
        Win win = simmpi::MPI_WIN_NULL;
        if (r.MPI_Win_create(mem.data(), 16, 4, simmpi::MPI_INFO_NULL, w, &win) !=
            simmpi::MPI_SUCCESS) {
            r.MPI_Finalize();
            return;
        }
        int rc = simmpi::MPI_SUCCESS;
        for (int i = 0; i < 60 && rc == simmpi::MPI_SUCCESS; ++i) {
            int tok = me, sum = 0;
            rc = r.MPI_Allreduce(&tok, &sum, 1, simmpi::MPI_INT, simmpi::MPI_SUM, w);
            if (rc != simmpi::MPI_SUCCESS) break;
            rc = r.MPI_Win_fence(0, win);
            if (rc != simmpi::MPI_SUCCESS) break;
            const std::int32_t v = me + i;
            rc = r.MPI_Put(&v, 1, simmpi::MPI_INT, (me + 1) % nranks, 0, 1,
                           simmpi::MPI_INT, win);
            if (rc != simmpi::MPI_SUCCESS) break;
            rc = r.MPI_Win_fence(0, win);
            if (rc != simmpi::MPI_SUCCESS) break;
            rc = r.MPI_Barrier(w);
        }
        r.MPI_Win_free(&win);
        r.MPI_Finalize();
    });
    simmpi::LaunchPlan plan;
    for (int i = 0; i < nranks; ++i)
        plan.placements.push_back("node" + std::to_string(i % 2));
    simmpi::launch(world, "hammer", {}, plan);
    world.join_all();
    if (dwell_us) ::usleep(static_cast<useconds_t>(dwell_us));
    if (epitaphs_out) *epitaphs_out = world.epitaph_count();
    // World's destructor closes the exporter: final snapshot + closed.
}

// ---------------------------------------------------------------------------
// Headline: a real external sampler process reads torn-free snapshots
// while 256 chaos-ridden ranks hammer every plane.
// ---------------------------------------------------------------------------

TEST(PvarExport, ExternalSamplerSeesOnlyConsistentSnapshotsUnderChaos) {
    const std::string path = temp_path("chaos");
    ::unlink(path.c_str());
    ::setenv(kExportEnv, path.c_str(), 1);
    ::setenv(kExportPeriodEnv, "300", 1);

    // Sampler first (it waits for the file), then the run.
    int fds[2] = {-1, -1};
    ASSERT_EQ(::pipe(fds), 0);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        ::close(fds[0]);
        ::dup2(fds[1], STDOUT_FILENO);
        ::close(fds[1]);
        ::execl(M2P_PVAR_SAMPLE_BIN, M2P_PVAR_SAMPLE_BIN, "--verify", "--quiet",
                "--json", "--until-closed", "--interval-us", "200", "--timeout-s",
                "120", path.c_str(), static_cast<char*>(nullptr));
        _exit(127);
    }
    ::close(fds[1]);

    std::uint64_t epitaphs = 0;
    run_chaos_world(256, /*seed=*/7, &epitaphs, /*dwell_us=*/300000);

    // The world is gone; the sampler saw the closed snapshot and
    // printed its summary.  Drain stdout, then reap.
    std::string out;
    char buf[4096];
    ssize_t got = 0;
    while ((got = ::read(fds[0], buf, sizeof buf)) > 0) out.append(buf, got);
    ::close(fds[0]);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << out;
    EXPECT_EQ(WEXITSTATUS(status), 0) << out;

    const std::size_t last_nl = out.find_last_of('\n', out.size() - 2);
    const std::string summary =
        out.substr(last_nl == std::string::npos ? 0 : last_nl + 1);
    EXPECT_EQ(json_int(summary, "violations"), 0) << out;
    EXPECT_GE(json_int(summary, "distinct_epochs"), 100) << summary;
    EXPECT_NE(summary.find("\"closed\":true"), std::string::npos) << summary;

    ::unsetenv(kExportEnv);
    ::unsetenv(kExportPeriodEnv);
    ::unlink(path.c_str());
}

// Rank death mid-run must leave a readable final snapshot: closed
// flag set, faults plane non-zero, accounting invariants intact.
TEST(PvarExport, RankDeathLeavesReadableClosedSnapshot) {
    const std::string path = temp_path("death");
    ::unlink(path.c_str());
    ::setenv(kExportEnv, path.c_str(), 1);
    ::setenv(kExportPeriodEnv, "500", 1);

    // Chaos at 64 ranks: scan a few seeds until one produces a death
    // (which fault lands first is seed-dependent).
    std::uint64_t epitaphs = 0;
    for (const std::uint64_t seed : {7u, 1u, 23u, 42u, 5u}) {
        run_chaos_world(64, seed, &epitaphs);
        if (epitaphs > 0) break;
        ::unlink(path.c_str());
    }
    ::unsetenv(kExportEnv);
    ::unsetenv(kExportPeriodEnv);
    ASSERT_GT(epitaphs, 0u) << "no chaos seed produced an epitaph";

    ExportReader rd;
    ASSERT_TRUE(rd.open(path));
    ExportReader::Sample s;
    ASSERT_TRUE(rd.read(s));
    EXPECT_TRUE(s.closed);
    EXPECT_GT(s.var_count, 0u);

    std::map<std::string, std::uint64_t> vals;
    const auto vars = rd.vars(s.var_count);
    for (std::uint32_t id = 0; id < s.var_count && id < vars.size(); ++id)
        vals[vars[id].name] = s.values[id];

    EXPECT_EQ(vals.at("faults.epitaphs"), epitaphs);
    EXPECT_EQ(vals.at("trace.ring.written"),
              vals.at("trace.ring.kept") + vals.at("trace.ring.dropped"));
    EXPECT_LE(vals.at("simmpi.mailbox.delivered_msgs"),
              vals.at("simmpi.mailbox.eager_msgs") +
                  vals.at("simmpi.mailbox.rendezvous_msgs"));
    rd.close();
    ::unlink(path.c_str());
}

// ---------------------------------------------------------------------------
// File-protocol cases, in-process.
// ---------------------------------------------------------------------------

TEST(PvarExport, ReaderNeverSeesTornValuesUnderFastWriter) {
    const std::string path = temp_path("fast");
    ::unlink(path.c_str());

    Registry reg;
    // Registration order + write order make `lo <= hi` a per-snapshot
    // invariant; a torn read would break it.
    std::atomic<std::uint64_t>* lo = reg.add_owned_counter("pair.lo");
    std::atomic<std::uint64_t>* hi = reg.add_owned_counter("pair.hi");
    ASSERT_NE(lo, nullptr);
    ASSERT_NE(hi, nullptr);

    ExportWriter::Options opt;
    opt.period_us = 100;  // flip as fast as the thread can
    ExportWriter wr(reg, path, opt);
    ASSERT_TRUE(wr.valid());

    std::atomic<bool> done{false};
    std::thread mutator([&] {
        while (!done.load(std::memory_order_acquire)) {
            hi->fetch_add(3, std::memory_order_relaxed);
            lo->fetch_add(3, std::memory_order_relaxed);
        }
    });

    ExportReader rd;
    ASSERT_TRUE(rd.open(path));
    std::uint64_t last_gen = 0;
    int consistent = 0;
    while (consistent < 200) {
        ExportReader::Sample s;
        ASSERT_TRUE(rd.read(s));
        ASSERT_EQ(s.generation % 2, 0u);  // never an odd (mid-flip) window
        ASSERT_GE(s.generation, last_gen);
        last_gen = s.generation;
        ASSERT_EQ(s.var_count, 3u);  // pair.lo, pair.hi, pvar.export.snapshots
        EXPECT_LE(s.values[0], s.values[1]);
        ++consistent;
    }
    done.store(true, std::memory_order_release);
    mutator.join();

    wr.close();
    ExportReader::Sample fin;
    ASSERT_TRUE(rd.read(fin));
    EXPECT_TRUE(fin.closed);
    EXPECT_EQ(fin.values[0], lo->load());
    EXPECT_EQ(fin.values[1], hi->load());
    rd.close();
    ::unlink(path.c_str());
}

TEST(PvarExport, ResumeInPlaceBumpsRunIdWithoutTruncation) {
    const std::string path = temp_path("resume");
    ::unlink(path.c_str());

    std::uint32_t first_run = 0;
    {
        Registry reg;
        reg.add_owned_counter("r.one")->store(11);
        ExportWriter wr(reg, path);
        ASSERT_TRUE(wr.valid());
        wr.write_now();
        ExportReader rd;
        ASSERT_TRUE(rd.open(path));
        ExportReader::Sample s;
        ASSERT_TRUE(rd.read(s));
        first_run = s.run_id;
        EXPECT_FALSE(s.closed);
    }

    // A reader that stays attached across the writer generations: its
    // mapping must survive the second writer's re-init (no truncate).
    ExportReader attached;
    ASSERT_TRUE(attached.open(path));

    {
        Registry reg;
        reg.add_owned_counter("r.two")->store(22);
        ExportWriter wr(reg, path);
        ASSERT_TRUE(wr.valid());
        wr.write_now();
        ExportReader::Sample s;
        ASSERT_TRUE(attached.read(s));
        EXPECT_EQ(s.run_id, first_run + 1);
        EXPECT_FALSE(s.closed);
        const auto vars = attached.vars(s.var_count);
        ASSERT_GE(vars.size(), 1u);
        EXPECT_EQ(vars[0].name, "r.two");  // fresh run, fresh name table
    }

    // Second writer closed on destruction; the attached reader sees it.
    ExportReader::Sample fin;
    ASSERT_TRUE(attached.read(fin));
    EXPECT_TRUE(fin.closed);
    EXPECT_EQ(fin.run_id, first_run + 1);
    attached.close();
    ::unlink(path.c_str());
}

// Regression: publish() used to write only the live samples into the
// inactive buffer, so a tombstoned variable's slot kept the value from
// TWO publishes ago and its published value oscillated between two
// stale readings (95, 100, 95, ...) -- flagged as a counter regression
// by m2p-pvar-sample --verify.  Removed variables must freeze at their
// last published value.
TEST(PvarExport, TombstonedVariableFreezesAtLastPublishedValue) {
    const std::string path = temp_path("tombstone");
    ::unlink(path.c_str());

    Registry reg;
    ExportWriter wr(reg, path);
    ASSERT_TRUE(wr.valid());

    std::atomic<std::uint64_t> v{95};
    {
        ProviderScope scope(reg);
        scope.add_counter("dying.counter", [&] { return v.load(); });
        wr.write_now();
        v.store(100);
        wr.write_now();  // last value published while alive: 100
    }  // provider detaches; the id is tombstoned

    ExportReader rd;
    ASSERT_TRUE(rd.open(path));
    for (int pass = 0; pass < 4; ++pass) {
        wr.write_now();  // each publish flips buffers
        ExportReader::Sample s;
        ASSERT_TRUE(rd.read(s));
        const auto vars = rd.vars(s.var_count);
        bool found = false;
        for (std::uint32_t id = 0; id < s.var_count && id < vars.size(); ++id) {
            if (vars[id].name != "dying.counter") continue;
            found = true;
            EXPECT_FALSE(vars[id].live);
            EXPECT_EQ(s.values[id], 100u) << "publish pass " << pass;
        }
        ASSERT_TRUE(found);
    }
    wr.close();
    rd.close();
    ::unlink(path.c_str());
}

// Regression: init_file() used to ftruncate an existing file to the
// new geometry, which would SIGBUS a sampler still mapping the old
// length.  A non-empty file of the wrong size is now refused (export
// disabled) and left untouched.
TEST(PvarExport, WriterRefusesExistingFileOfDifferentGeometry) {
    const std::string path = temp_path("geometry");
    ::unlink(path.c_str());

    ExportWriter::Options small;
    small.var_capacity = 64;
    {
        Registry reg;
        reg.add_owned_counter("g.one")->store(7);
        ExportWriter wr(reg, path, small);
        ASSERT_TRUE(wr.valid());
    }

    // Different capacity: must come up invalid without resizing.
    Registry reg2;
    ExportWriter::Options big;
    big.var_capacity = 128;
    ExportWriter wr2(reg2, path, big);
    EXPECT_FALSE(wr2.valid());

    // The original file is intact for any still-attached reader.
    ExportReader rd;
    ASSERT_TRUE(rd.open(path));
    EXPECT_EQ(rd.var_capacity(), 64u);
    ExportReader::Sample s;
    ASSERT_TRUE(rd.read(s));
    EXPECT_TRUE(s.closed);  // the first writer's destructor closed it
    rd.close();
    ::unlink(path.c_str());
}

TEST(PvarExport, OpenRejectsMissingAndMalformedFiles) {
    ExportReader rd;
    EXPECT_FALSE(rd.open(temp_path("missing")));

    const std::string path = temp_path("garbage");
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[] = "not a pvar export file";
    std::fwrite(junk, 1, sizeof junk, f);
    std::fclose(f);
    EXPECT_FALSE(rd.open(path));
    ::unlink(path.c_str());
}

}  // namespace
}  // namespace m2p::pvar
