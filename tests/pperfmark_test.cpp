// PPerfMark programs: self-consistency (they run, communicate the
// amounts their ground truths claim) plus tool byte/op-count
// validation against those truths -- the measurement side of the
// paper's Tables 2 and 3 (the PC grading runs in the benches).
#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/session.hpp"
#include "pperfmark/pperfmark.hpp"

namespace m2p::ppm {
namespace {

using core::Focus;
using core::Session;
using simmpi::Flavor;

ppm::Params tiny() {
    Params p;
    p.iterations = 25;
    p.time_to_waste = 1;
    p.waste_unit_seconds = 0.001;
    p.epochs = 4;
    p.rma_ops_per_epoch = 10;
    p.win_blast_count = 8;
    return p;
}

class ProgramRuns : public ::testing::TestWithParam<std::tuple<Flavor, const char*>> {};

TEST_P(ProgramRuns, CompletesWithoutDeadlock) {
    const auto [flavor, prog] = GetParam();
    Session s(flavor);
    ppm::register_all(s.world(), tiny());
    s.run(prog, 4);
    SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(
    AllPrograms, ProgramRuns,
    ::testing::Combine(
        ::testing::Values(Flavor::Lam, Flavor::Mpich),
        ::testing::Values(kSmallMessages, kBigMessage, kWrongWay, kIntensiveServer,
                          kRandomBarrier, kDiffuseProcedure, kSystemTime,
                          kHotProcedure, kSstwod, kAllcount, kWincreateBlast,
                          kWinfenceSync, kWinscpwSync, kWinlockSync, kOned)),
    [](const ::testing::TestParamInfo<std::tuple<Flavor, const char*>>& i) {
        std::string name = std::get<0>(i.param) == Flavor::Lam ? "Lam_" : "Mpich_";
        for (const char* c = std::get<1>(i.param); *c; ++c)
            name += (*c == '-') ? '_' : *c;
        return name;
    });

// Spawn programs are LAM-only (MPICH2 beta lacked spawn, paper 5.2.2).
class SpawnProgramRuns : public ::testing::TestWithParam<const char*> {};

TEST_P(SpawnProgramRuns, CompletesWithoutDeadlock) {
    Session s(Flavor::Lam);
    ppm::register_all(s.world(), tiny());
    s.run(GetParam(), 2);
    SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(SpawnPrograms, SpawnProgramRuns,
                         ::testing::Values(kSpawnCount, kSpawnSync, kSpawnwinSync),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                             std::string name = i.param;
                             for (auto& c : name)
                                 if (c == '-') c = '_';
                             return name;
                         });

TEST(GroundTruth, SmallMessagesBytesMatchToolMeasurement) {
    Session s(Flavor::Lam);
    Params p = tiny();
    p.iterations = 300;
    ppm::register_all(s.world(), p);
    auto sent = s.tool().metrics().request("msg_bytes_sent", Focus{});
    auto msgs = s.tool().metrics().request("msgs_sent", Focus{});
    s.run(kSmallMessages, 6);
    const MessageTruth t = small_messages_truth(p, 6);
    // All five clients send; the tool's counter sums them.
    EXPECT_DOUBLE_EQ(sent->total(), static_cast<double>(t.bytes_sent * 5));
    EXPECT_DOUBLE_EQ(msgs->total(), static_cast<double>(t.messages_sent * 5));
    EXPECT_EQ(t.bytes_received_at_server, t.bytes_sent * 5);
    s.tool().metrics().release(sent);
    s.tool().metrics().release(msgs);
}

TEST(GroundTruth, BigMessageBytesMatchToolMeasurement) {
    Session s(Flavor::Lam);
    Params p = tiny();
    p.iterations = 20;
    ppm::register_all(s.world(), p);
    auto sent = s.tool().metrics().request("msg_bytes_sent", Focus{});
    auto recv = s.tool().metrics().request("msg_bytes_recv", Focus{});
    s.run(kBigMessage, 2);
    const MessageTruth t = big_message_truth(p);
    // Both directions: 2x the per-direction total.
    EXPECT_DOUBLE_EQ(sent->total(), static_cast<double>(2 * t.bytes_sent));
    EXPECT_DOUBLE_EQ(recv->total(), static_cast<double>(2 * t.bytes_sent));
    s.tool().metrics().release(sent);
    s.tool().metrics().release(recv);
}

TEST(GroundTruth, WrongWayBytesMatchToolMeasurement) {
    Session s(Flavor::Mpich);
    Params p = tiny();
    p.iterations = 50;
    ppm::register_all(s.world(), p);
    auto sent = s.tool().metrics().request("msg_bytes_sent", Focus{});
    auto recv = s.tool().metrics().request("msg_bytes_recv", Focus{});
    s.run(kWrongWay, 2);
    const MessageTruth t = wrong_way_truth(p);
    EXPECT_DOUBLE_EQ(sent->total(), static_cast<double>(t.bytes_sent));
    EXPECT_DOUBLE_EQ(recv->total(), static_cast<double>(t.bytes_received_at_server));
    s.tool().metrics().release(sent);
    s.tool().metrics().release(recv);
}

TEST(GroundTruth, AllcountRmaOpsAndBytesMatch) {
    // Paper Table 3, allcount: "Paradyn was able to count the number
    // of RMA operations and the bytes that were transferred by them."
    for (const Flavor flavor : {Flavor::Lam, Flavor::Mpich}) {
        Session s(flavor);
        const Params p = tiny();
        ppm::register_all(s.world(), p);
        auto& mm = s.tool().metrics();
        auto puts = mm.request("rma_put_ops", Focus{});
        auto gets = mm.request("rma_get_ops", Focus{});
        auto accs = mm.request("rma_acc_ops", Focus{});
        auto ops = mm.request("rma_ops", Focus{});
        auto put_b = mm.request("rma_put_bytes", Focus{});
        auto get_b = mm.request("rma_get_bytes", Focus{});
        auto acc_b = mm.request("rma_acc_bytes", Focus{});
        auto all_b = mm.request("rma_bytes", Focus{});
        auto sync_ops = mm.request("rma_sync_ops", Focus{});
        s.run(kAllcount, 3);
        const RmaTruth t = allcount_truth(p, 3);
        EXPECT_DOUBLE_EQ(puts->total(), static_cast<double>(t.puts));
        EXPECT_DOUBLE_EQ(gets->total(), static_cast<double>(t.gets));
        EXPECT_DOUBLE_EQ(accs->total(), static_cast<double>(t.accs));
        EXPECT_DOUBLE_EQ(ops->total(), static_cast<double>(t.puts + t.gets + t.accs));
        EXPECT_DOUBLE_EQ(put_b->total(), static_cast<double>(t.put_bytes));
        EXPECT_DOUBLE_EQ(get_b->total(), static_cast<double>(t.get_bytes));
        EXPECT_DOUBLE_EQ(acc_b->total(), static_cast<double>(t.acc_bytes));
        EXPECT_DOUBLE_EQ(all_b->total(),
                         static_cast<double>(t.put_bytes + t.get_bytes + t.acc_bytes));
        // rma_sync_ops: fences ((epochs*2) per process) + create+free.
        EXPECT_GT(sync_ops->total(), 0.0);
        for (auto* pr : {&puts, &gets, &accs, &ops, &put_b, &get_b, &acc_b, &all_b,
                         &sync_ops})
            mm.release(*pr);
    }
}

TEST(GroundTruth, WincreateBlastDiscoversEveryWindow) {
    Session s(Flavor::Lam);
    Params p = tiny();
    ppm::register_all(s.world(), p);
    s.run(kWincreateBlast, 2);
    const auto wins = s.tool().hierarchy().children("/SyncObject/Window", true);
    EXPECT_EQ(wins.size(), static_cast<std::size_t>(p.win_blast_count));
    for (const auto& w : wins) EXPECT_TRUE(s.tool().hierarchy().get(w).retired);
}

TEST(GroundTruth, SpawnProgramsGrowTheResourceHierarchy) {
    // Fig 23: the Resource Hierarchy before/after MPI_Comm_spawn.
    Session s(Flavor::Lam);
    Params p = tiny();
    p.iterations = 10;
    ppm::register_all(s.world(), p);
    const auto before = s.tool().hierarchy().children("/Process", true).size();
    s.run(kSpawnwinSync, 1);
    const auto after = s.tool().hierarchy().children("/Process", true).size();
    EXPECT_EQ(before, 0u);
    EXPECT_EQ(after, 1u + static_cast<std::size_t>(p.spawn_children));
    // The friendly names gave the paper its Fig 23 display: the merged
    // communicator and the window name also appear under Message (LAM).
    bool named_window = false;
    for (const auto& c : s.tool().hierarchy().children("/SyncObject/Window", true))
        named_window |= s.tool().hierarchy().get(c).display == "ParentChildWindow";
    EXPECT_TRUE(named_window);
}

TEST(GroundTruth, SstwodAndOnedConverge) {
    // The solvers are real numerics: run both and check they didn't
    // blow up (NaN-free grids are implied by clean termination with
    // bounded allreduce results; here we just assert completion across
    // process counts).
    for (int n : {1, 2, 3, 5}) {
        Session s(Flavor::Lam);
        Params p = tiny();
        p.iterations = 12;
        p.grid_n = 32;
        ppm::register_all(s.world(), p);
        s.run(kSstwod, n);
    }
    for (int n : {1, 2, 4}) {
        Session s(Flavor::Mpich);
        Params p = tiny();
        p.iterations = 12;
        p.grid_n = 32;
        ppm::register_all(s.world(), p);
        s.run(kOned, n);
    }
    SUCCEED();
}

}  // namespace
}  // namespace m2p::ppm
