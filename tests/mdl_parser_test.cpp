#include <gtest/gtest.h>

#include "mdl/ast.hpp"
#include "mdl/default_metrics.hpp"

namespace m2p::mdl {
namespace {

// The paper's Figure 2 rma_put_ops definition, nearly verbatim.
constexpr const char* kFig2PutOps = R"(
metric mpi_rma_put_ops {
    name "rma_put_ops";
    units ops;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    unitstype unnormalized;
    constraint moduleConstraint;
    constraint procedureConstraint;
    constraint mpi_windowConstraint;
    base is counter {
        foreach func in mpi_put {
            append preinsn func.entry constrained (* mpi_rma_put_ops++; *)
        }
    }
}
)";

TEST(MdlParser, ParsesFig2PutOps) {
    const MdlFile f = parse(kFig2PutOps);
    ASSERT_EQ(f.metrics.size(), 1u);
    const MetricDef& m = f.metrics[0];
    EXPECT_EQ(m.id, "mpi_rma_put_ops");
    EXPECT_EQ(m.name, "rma_put_ops");
    EXPECT_EQ(m.units, "ops");
    EXPECT_EQ(m.style, "EventCounter");
    EXPECT_EQ(m.unitstype, UnitsType::Unnormalized);
    ASSERT_EQ(m.constraints.size(), 3u);
    EXPECT_EQ(m.constraints[2], "mpi_windowConstraint");
    EXPECT_EQ(m.base, BaseType::Counter);
    ASSERT_EQ(m.foreachs.size(), 1u);
    EXPECT_EQ(m.foreachs[0].funcset, "mpi_put");
    ASSERT_EQ(m.foreachs[0].points.size(), 1u);
    const InstPoint& p = m.foreachs[0].points[0];
    EXPECT_EQ(p.mode, InsertMode::Append);
    EXPECT_EQ(p.pos, PointPos::Entry);
    EXPECT_TRUE(p.constrained);
    ASSERT_EQ(p.code.size(), 1u);
    EXPECT_EQ(p.code[0]->kind, Stmt::Kind::Increment);
    EXPECT_EQ(p.code[0]->target, "mpi_rma_put_ops");
}

// Figure 2's rma_put_bytes: out-parameter call + arithmetic.
constexpr const char* kFig2PutBytes = R"(
metric mpi_rma_put_bytes {
    name "rma_put_bytes";
    units bytes;
    aggregateOperator sum;
    style EventCounter;
    flavor { mpi };
    counter bytes;
    counter count;
    base is counter {
        foreach func in mpi_put {
            append preinsn func.entry constrained
                (* MPI_Type_size($arg[2], &bytes);
                   count = $arg[1];
                   mpi_rma_put_bytes += bytes * count; *)
        }
    }
}
)";

TEST(MdlParser, ParsesFig2PutBytes) {
    const MdlFile f = parse(kFig2PutBytes);
    ASSERT_EQ(f.metrics.size(), 1u);
    const MetricDef& m = f.metrics[0];
    ASSERT_EQ(m.counters.size(), 2u);
    EXPECT_EQ(m.counters[0], "bytes");
    const auto& code = m.foreachs[0].points[0].code;
    ASSERT_EQ(code.size(), 3u);
    EXPECT_EQ(code[0]->kind, Stmt::Kind::Call);
    EXPECT_EQ(code[0]->call->ident, "MPI_Type_size");
    ASSERT_EQ(code[0]->call->call_args.size(), 2u);
    EXPECT_EQ(code[0]->call->call_args[0]->kind, Expr::Kind::Arg);
    EXPECT_EQ(code[0]->call->call_args[0]->index, 2);
    EXPECT_EQ(code[0]->call->call_args[1]->kind, Expr::Kind::AddressOf);
    EXPECT_EQ(code[1]->kind, Stmt::Kind::Assign);
    EXPECT_EQ(code[2]->kind, Stmt::Kind::AddAssign);
    EXPECT_EQ(code[2]->value->kind, Expr::Kind::Binary);
    EXPECT_EQ(code[2]->value->op, "*");
}

// Figure 2's window constraint: path, if-statement, $constraint[].
constexpr const char* kFig2Constraint = R"(
constraint mpi_windowConstraint /SyncObject/Window is counter {
    foreach func in mpi_get {
        prepend preinsn func.entry
            (* if (DYNINSTWindow_FindUniqueId($arg[7]) == $constraint[0]) mpi_windowConstraint = 1; *)
        append preinsn func.return (* mpi_windowConstraint = 0; *)
    }
}
)";

TEST(MdlParser, ParsesFig2WindowConstraint) {
    const MdlFile f = parse(kFig2Constraint);
    ASSERT_EQ(f.constraints.size(), 1u);
    const ConstraintDef& c = f.constraints[0];
    EXPECT_EQ(c.id, "mpi_windowConstraint");
    EXPECT_EQ(c.path, "/SyncObject/Window");
    ASSERT_EQ(c.foreachs.size(), 1u);
    ASSERT_EQ(c.foreachs[0].points.size(), 2u);
    const InstPoint& entry = c.foreachs[0].points[0];
    EXPECT_EQ(entry.mode, InsertMode::Prepend);
    ASSERT_EQ(entry.code.size(), 1u);
    EXPECT_EQ(entry.code[0]->kind, Stmt::Kind::If);
    EXPECT_EQ(entry.code[0]->value->op, "==");
    EXPECT_EQ(entry.code[0]->value->rhs->kind, Expr::Kind::ConstraintArg);
}

TEST(MdlParser, WallTimerMetric) {
    const MdlFile f = parse(R"(
metric m { name "t"; unitstype normalized;
  base is walltimer {
    foreach func in s {
      append preinsn func.entry constrained (* startWallTimer(m); *)
      prepend preinsn func.return constrained (* stopWallTimer(m); *)
    }
  } }
)");
    EXPECT_EQ(f.metrics[0].base, BaseType::WallTimer);
    EXPECT_EQ(f.metrics[0].foreachs[0].points[1].mode, InsertMode::Prepend);
    EXPECT_EQ(f.metrics[0].foreachs[0].points[1].pos, PointPos::Return);
}

TEST(MdlParser, DaemonWithMpiImplementationAttribute) {
    const MdlFile f = parse(R"(
daemon pd_lam { command "paradynd"; flavor mpi; mpi_implementation "lam"; }
)");
    const DaemonDef* d = f.find_daemon("pd_lam");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->attrs.at("command"), "paradynd");
    EXPECT_EQ(d->attrs.at("mpi_implementation"), "lam");
}

TEST(MdlParser, TunableConstantsSupportFractions) {
    const MdlFile f = parse("tunable_constant PC_CpuThreshold 0.2;\n");
    EXPECT_DOUBLE_EQ(f.tunables.at("PC_CpuThreshold"), 0.2);
}

TEST(MdlParser, CommentsAreIgnored) {
    const MdlFile f = parse(R"(
// line comment
/* block
   comment */
tunable_constant x 1;
)");
    EXPECT_EQ(f.tunables.at("x"), 1.0);
}

TEST(MdlParser, EmptyForeachBodyAllowed) {
    // Figure 2's rma_sync_wait contains "foreach func in mpi_all_calls { }".
    const MdlFile f = parse(R"(
metric m { name "m"; base is counter { foreach func in s { } } }
)");
    EXPECT_TRUE(f.metrics[0].foreachs[0].points.empty());
}

TEST(MdlParser, ErrorsCarryLineNumbers) {
    try {
        parse("metric m {\n  bogus_attribute x;\n}");
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    }
}

TEST(MdlParser, UnterminatedStringThrows) {
    EXPECT_THROW(parse("metric m { name \"oops; }"), ParseError);
}

TEST(MdlParser, UnknownTopLevelThrows) {
    EXPECT_THROW(parse("widget w {}"), ParseError);
}

TEST(MdlParser, FindMetricByIdAndDisplayName) {
    const MdlFile f = parse(kFig2PutOps);
    EXPECT_NE(f.find_metric("mpi_rma_put_ops"), nullptr);
    EXPECT_NE(f.find_metric("rma_put_ops"), nullptr);
    EXPECT_EQ(f.find_metric("nope"), nullptr);
}

TEST(MdlParser, DefaultMetricFileParsesCompletely) {
    const MdlFile f = parse(default_metrics_source());
    // The 12 Table-1 RMA metrics plus the MPI-1 metrics.
    for (const char* name :
         {"rma_put_ops", "rma_get_ops", "rma_acc_ops", "rma_ops", "rma_put_bytes",
          "rma_get_bytes", "rma_acc_bytes", "rma_bytes", "at_rma_sync_wait",
          "pt_rma_sync_wait", "rma_sync_wait", "rma_sync_ops", "sync_wait_inclusive",
          "io_wait_inclusive", "cpu_inclusive", "msg_bytes_sent", "msg_bytes_recv",
          "msgs_sent"})
        EXPECT_NE(f.find_metric(name), nullptr) << name;
    for (const char* c :
         {"procedureConstraint", "moduleConstraint", "mpi_msgConstraint",
          "mpi_msgtagConstraint", "mpi_barrierConstraint", "mpi_windowConstraint"})
        EXPECT_NE(f.find_constraint(c), nullptr) << c;
    EXPECT_NE(f.find_daemon("pd_lam"), nullptr);
    EXPECT_NE(f.find_daemon("pd_mpich"), nullptr);
    EXPECT_EQ(f.tunables.count("PC_SyncThreshold"), 1u);
}

}  // namespace
}  // namespace m2p::mdl
