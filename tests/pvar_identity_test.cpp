// Pvar counter-identity matrix: the registry's snapshot of every
// migrated plane must equal the plane's legacy accessor bit for bit.
//
// The pvar plane is a *view*, not a second set of books: each variable
// reads the same per-thread/sharded storage its plane already
// maintains.  This matrix replays a five-plane workload (pt2pt +
// collectives + RMA + MPI-IO, which together drive the dispatch,
// transport, trace-ring, rma-table1, and faults planes) at {2, 64,
// 256} ranks under both flavors, and asserts at quiescence that a
// registry snapshot and the legacy accessors (World::mailbox_stats,
// World::win_rma_counters, instr DispatchStats, FlightRecorder::Stats,
// World::epitaph_count) report identical values.  Mid-run it also
// checks the snapshot-internal ordering invariant (delivered <=
// queued) while ranks are still churning.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "pvar/registry.hpp"
#include "simmpi/launcher.hpp"
#include "simmpi/rank.hpp"
#include "simmpi/world.hpp"
#include "trace/flight_recorder.hpp"

namespace m2p::simmpi {
namespace {

class PvarIdentityTest : public ::testing::TestWithParam<std::tuple<Flavor, int>> {};

/// Resolves a snapshot into name -> value using the registry's
/// descriptors (ids are stable, names are the cross-plane contract).
std::map<std::string, std::uint64_t> by_name(pvar::Registry& reg,
                                             const pvar::Snapshot& snap) {
    std::map<std::string, std::uint64_t> out;
    for (const pvar::Sample& s : snap.samples) {
        const pvar::Desc* d = reg.describe(s.id);
        if (d) out[d->name] = s.value;
    }
    return out;
}

TEST_P(PvarIdentityTest, SnapshotMatchesLegacyAccessorsBitForBit) {
    const auto [flavor, n] = GetParam();

    instr::Registry reg;
    World::Config cfg;
    cfg.flavor = flavor;
    cfg.file_latency_seconds = 1e-6;  // keep the IO leg quick at 256 ranks
    cfg.file_bandwidth_bytes_per_second = 10e9;
    World world(reg, cfg);

    std::atomic<Win> win_out{MPI_WIN_NULL};
    world.register_program("fiveplane", [n, &win_out](Rank& r,
                                                      const std::vector<std::string>&) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        const int next = (me + 1) % n;
        const int prev = (me - 1 + n) % n;

        // Transport plane: a pt2pt ring (eager) plus one over-the-
        // eager-limit message per rank so the rendezvous counter moves.
        int tok = me;
        Status st;
        std::vector<char> big(8192, static_cast<char>(me));
        if (me % 2 == 0) {
            ASSERT_EQ(r.MPI_Send(&tok, 1, MPI_INT, next, 1, w), MPI_SUCCESS);
            ASSERT_EQ(r.MPI_Recv(&tok, 1, MPI_INT, prev, 1, w, &st), MPI_SUCCESS);
            ASSERT_EQ(r.MPI_Send(big.data(), 8192, MPI_BYTE, next, 2, w), MPI_SUCCESS);
            ASSERT_EQ(r.MPI_Recv(big.data(), 8192, MPI_BYTE, prev, 2, w, &st),
                      MPI_SUCCESS);
        } else {
            ASSERT_EQ(r.MPI_Recv(&tok, 1, MPI_INT, prev, 1, w, &st), MPI_SUCCESS);
            ASSERT_EQ(r.MPI_Send(&tok, 1, MPI_INT, next, 1, w), MPI_SUCCESS);
            ASSERT_EQ(r.MPI_Recv(big.data(), 8192, MPI_BYTE, prev, 2, w, &st),
                      MPI_SUCCESS);
            ASSERT_EQ(r.MPI_Send(big.data(), 8192, MPI_BYTE, next, 2, w), MPI_SUCCESS);
            EXPECT_EQ(big[0], static_cast<char>(prev));
        }

        // Collectives plane.
        int sum = 0;
        ASSERT_EQ(r.MPI_Allreduce(&tok, &sum, 1, MPI_INT, MPI_SUM, w), MPI_SUCCESS);
        ASSERT_EQ(r.MPI_Barrier(w), MPI_SUCCESS);

        // RMA plane: one put/get/accumulate per rank between fences.
        std::vector<std::int32_t> mem(4, 0);
        Win win = MPI_WIN_NULL;
        ASSERT_EQ(r.MPI_Win_create(mem.data(), 16, 4, MPI_INFO_NULL, w, &win),
                  MPI_SUCCESS);
        if (me == 0) win_out = win;
        ASSERT_EQ(r.MPI_Win_fence(0, win), MPI_SUCCESS);
        const std::int32_t put = me + 1;
        std::int32_t got = 0;
        ASSERT_EQ(r.MPI_Put(&put, 1, MPI_INT, next, 0, 1, MPI_INT, win), MPI_SUCCESS);
        ASSERT_EQ(r.MPI_Get(&got, 1, MPI_INT, next, 1, 1, MPI_INT, win), MPI_SUCCESS);
        ASSERT_EQ(r.MPI_Accumulate(&put, 1, MPI_INT, next, 2, 1, MPI_INT, MPI_SUM, win),
                  MPI_SUCCESS);
        ASSERT_EQ(r.MPI_Win_fence(0, win), MPI_SUCCESS);
        ASSERT_EQ(r.MPI_Win_free(&win), MPI_SUCCESS);

        // IO plane (drives dispatch + trace events through the fs).
        File fh = MPI_FILE_NULL;
        ASSERT_EQ(r.MPI_File_open(w, "identity.dat", MPI_MODE_CREATE | MPI_MODE_RDWR,
                                  MPI_INFO_NULL, &fh),
                  MPI_SUCCESS);
        std::int32_t cell = me;
        ASSERT_EQ(r.MPI_File_write_at(fh, me * 4, &cell, 1, MPI_INT, &st), MPI_SUCCESS);
        ASSERT_EQ(r.MPI_Barrier(w), MPI_SUCCESS);
        std::int32_t back = -1;
        ASSERT_EQ(r.MPI_File_read_at(fh, next * 4, &back, 1, MPI_INT, &st), MPI_SUCCESS);
        EXPECT_EQ(back, next);
        ASSERT_EQ(r.MPI_File_close(&fh), MPI_SUCCESS);

        r.MPI_Finalize();
    });

    LaunchPlan plan;
    for (int i = 0; i < n; ++i) plan.placements.push_back("node" + std::to_string(i % 2));
    launch(world, "fiveplane", {}, plan);

    // Mid-run: the registration-order invariant must hold inside every
    // snapshot even while ranks churn the mailboxes.
    for (int pass = 0; pass < 3; ++pass) {
        const auto vals = by_name(world.pvars(), world.pvars().snapshot());
        const std::uint64_t queued = vals.at("simmpi.mailbox.eager_msgs") +
                                     vals.at("simmpi.mailbox.rendezvous_msgs");
        EXPECT_LE(vals.at("simmpi.mailbox.delivered_msgs"), queued);
    }

    world.join_all();
    ASSERT_TRUE(world.epitaphs().empty());
    const Win win = win_out.load();
    ASSERT_NE(win, MPI_WIN_NULL);

    // Quiescent: one snapshot, then every legacy accessor.
    const auto vals = by_name(world.pvars(), world.pvars().snapshot());

    // Dispatch plane.
    const instr::DispatchStats ds = reg.stats();
    EXPECT_EQ(vals.at("instr.dispatch.events"), ds.events);
    EXPECT_EQ(vals.at("instr.dispatch.snippets"), ds.snippets_executed);
    EXPECT_GT(ds.events, 0u);

    // Transport plane.
    const World::MailboxStats ms = world.mailbox_stats();
    EXPECT_EQ(vals.at("simmpi.mailbox.eager_msgs"), ms.eager_msgs);
    EXPECT_EQ(vals.at("simmpi.mailbox.rendezvous_msgs"), ms.rendezvous_msgs);
    EXPECT_EQ(vals.at("simmpi.mailbox.delivered_msgs"), ms.delivered_msgs);
    EXPECT_EQ(vals.at("simmpi.mailbox.delivered_bytes"), ms.delivered_bytes);
    EXPECT_EQ(vals.at("simmpi.mailbox.flow_stalls"), ms.flow_stalls);
    EXPECT_EQ(vals.at("simmpi.mailbox.bytes_queued"), ms.bytes_queued);
    EXPECT_EQ(vals.at("simmpi.mailbox.bytes_queued_hwm"), ms.bytes_queued_hwm);
    // Everything queued was drained: the ring + collectives all
    // completed, so delivery accounting is exact at quiescence.
    EXPECT_EQ(ms.delivered_msgs, ms.eager_msgs + ms.rendezvous_msgs);
    EXPECT_GT(ms.delivered_msgs, 0u);
    EXPECT_EQ(ms.bytes_queued, 0u);

    // Trace-ring plane.
    ASSERT_NE(world.recorder(), nullptr);
    const trace::FlightRecorder::Stats ts = world.recorder()->stats();
    EXPECT_EQ(vals.at("trace.ring.written"), ts.written);
    EXPECT_EQ(vals.at("trace.ring.kept"), ts.kept);
    EXPECT_EQ(vals.at("trace.ring.dropped"), ts.dropped);
    EXPECT_EQ(ts.written, ts.kept + ts.dropped);
    EXPECT_EQ(vals.at("trace.ring.capacity"), world.recorder()->ring_capacity());

    // Faults plane (clean run: zero on both sides).
    EXPECT_EQ(vals.at("faults.epitaphs"), world.epitaph_count());
    EXPECT_EQ(world.epitaph_count(), world.epitaphs().size());

    // RMA table-1 plane for the published window.
    const RmaCounterSnapshot rs = world.win_rma_counters(win);
    const std::string base = "rma.table1.win" + std::to_string(win) + ".";
    EXPECT_EQ(vals.at(base + "put_ops"), static_cast<std::uint64_t>(rs.put_ops));
    EXPECT_EQ(vals.at(base + "get_ops"), static_cast<std::uint64_t>(rs.get_ops));
    EXPECT_EQ(vals.at(base + "acc_ops"), static_cast<std::uint64_t>(rs.acc_ops));
    EXPECT_EQ(vals.at(base + "put_bytes"), static_cast<std::uint64_t>(rs.put_bytes));
    EXPECT_EQ(vals.at(base + "get_bytes"), static_cast<std::uint64_t>(rs.get_bytes));
    EXPECT_EQ(vals.at(base + "acc_bytes"), static_cast<std::uint64_t>(rs.acc_bytes));
    EXPECT_EQ(vals.at(base + "sync_ops"), static_cast<std::uint64_t>(rs.sync_ops));
    // The snapshot's seconds fields are derived from the same ns
    // atomics the pvars read: reconverting must be bit-identical.
    EXPECT_DOUBLE_EQ(static_cast<double>(vals.at(base + "at_sync_wait_ns")) * 1e-9,
                     rs.at_sync_wait);
    EXPECT_DOUBLE_EQ(static_cast<double>(vals.at(base + "pt_sync_wait_ns")) * 1e-9,
                     rs.pt_sync_wait);
    // And the workload's hand-derived expectations hold through BOTH
    // views (one put/get/acc of 4 bytes per rank).
    const std::int64_t N = n;
    EXPECT_EQ(rs.put_ops, N);
    EXPECT_EQ(rs.get_ops, N);
    EXPECT_EQ(rs.acc_ops, N);
    EXPECT_EQ(rs.put_bytes, 4 * N);
    EXPECT_EQ(rs.get_bytes, 4 * N);
    EXPECT_EQ(rs.acc_bytes, 4 * N);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PvarIdentityTest,
    ::testing::Combine(::testing::Values(Flavor::Lam, Flavor::Mpich),
                       ::testing::Values(2, 64, 256)),
    [](const ::testing::TestParamInfo<PvarIdentityTest::ParamType>& info) {
        return std::string(std::get<0>(info.param) == Flavor::Lam ? "Lam" : "Mpich") +
               std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace m2p::simmpi
