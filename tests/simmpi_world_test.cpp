// World-level state machinery: process table, CPU clocks, handle
// tables, start gate, node pools, MPIR stub.
#include <gtest/gtest.h>

#include <thread>

#include "simmpi/launcher.hpp"
#include "simmpi/rank.hpp"
#include "simmpi/world.hpp"
#include "util/clock.hpp"

namespace m2p::simmpi {
namespace {

TEST(World, ProcTableAndNodes) {
    instr::Registry reg;
    World world(reg, {});
    const int a = world.create_proc("nodeA", "prog");
    const int b = world.create_proc("nodeB", "prog");
    EXPECT_EQ(a, 0);
    EXPECT_EQ(b, 1);
    EXPECT_EQ(world.proc_count(), 2u);
    EXPECT_EQ(world.proc(0).node, "nodeA");
    EXPECT_EQ(world.proc(1).program, "prog");
    EXPECT_FALSE(world.all_finished());  // nothing started yet
}

TEST(World, StartingUnknownProgramThrows) {
    instr::Registry reg;
    World world(reg, {});
    const int g = world.create_proc("n", "missing-program");
    EXPECT_THROW(world.start_proc(g, {}), std::runtime_error);
}

TEST(World, PerProcCpuClocksTrackBusyThreads) {
    instr::Registry reg;
    World world(reg, {});
    world.register_program("busy", [](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        int me = 0;
        r.MPI_Comm_rank(r.MPI_COMM_WORLD(), &me);
        if (me == 0) util::burn_thread_cpu(0.05);
        r.MPI_Finalize();
    });
    LaunchPlan plan;
    plan.placements = {"n", "n"};
    launch(world, "busy", {}, plan);
    world.join_all();
    EXPECT_GT(world.proc_cpu_seconds(0), 0.04);
    EXPECT_LT(world.proc_cpu_seconds(1), 0.03);
    EXPECT_TRUE(world.all_finished());
}

TEST(World, StartGateHoldsProcessesUntilReleased) {
    instr::Registry reg;
    World::Config cfg;
    cfg.start_paused = true;
    World world(reg, cfg);
    std::atomic<int> entered{0};
    world.register_program("gated", [&](Rank& r, const std::vector<std::string>&) {
        ++entered;
        r.MPI_Init();
        r.MPI_Finalize();
    });
    LaunchPlan plan;
    plan.placements = {"n", "n", "n"};
    launch(world, "gated", {}, plan);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_EQ(entered.load(), 0);  // still paused
    world.release_start_gate();
    world.join_all();
    EXPECT_EQ(entered.load(), 3);
}

TEST(World, StartGateReleaseCoversLateStarters) {
    instr::Registry reg;
    World::Config cfg;
    cfg.start_paused = true;
    World world(reg, cfg);
    std::atomic<int> entered{0};
    world.register_program("gated", [&](Rank& r, const std::vector<std::string>&) {
        ++entered;
        r.MPI_Init();
        r.MPI_Finalize();
    });
    world.release_start_gate();  // released before anything started
    LaunchPlan plan;
    plan.placements = {"n"};
    launch(world, "gated", {}, plan);
    world.join_all();
    EXPECT_EQ(entered.load(), 1);
}

TEST(World, HandleTablesRejectBadHandles) {
    instr::Registry reg;
    World world(reg, {});
    EXPECT_THROW(world.comm(12345), std::out_of_range);
    EXPECT_THROW(world.win(12345), std::out_of_range);
    EXPECT_THROW(world.group(12345), std::out_of_range);
    EXPECT_THROW(world.info(12345), std::out_of_range);
    EXPECT_FALSE(world.comm_valid(12345));
    EXPECT_FALSE(world.win_valid(-1));
    EXPECT_EQ(world.win_impl_id(999), -1);
    EXPECT_EQ(world.comm_context(999), -1);
}

TEST(World, CommHandlesNeverReused) {
    instr::Registry reg;
    World world(reg, {});
    const Comm a = world.create_comm({0});
    world.comm(a).freed = true;
    const Comm b = world.create_comm({0});
    EXPECT_NE(a, b);
    EXPECT_NE(world.comm_context(a), world.comm_context(b));
}

TEST(World, WinImplIdsRecycleThroughFreeList) {
    instr::Registry reg;
    World world(reg, {});
    const Comm c = world.create_comm({0});
    const Win w1 = world.create_win(c);
    const int id1 = static_cast<int>(world.win_impl_id(w1));
    world.release_win_impl_id(id1);
    const Win w2 = world.create_win(c);
    EXPECT_NE(w1, w2);                              // handle unique
    EXPECT_EQ(world.win_impl_id(w2), id1);          // impl id recycled
}

TEST(World, RegisteredFunctionsCoverTheMpiSurface) {
    instr::Registry reg;
    World world(reg, {});
    for (const char* name :
         {"MPI_Send", "PMPI_Send", "MPI_Win_create", "PMPI_Win_fence",
          "PMPI_Comm_spawn", "PMPI_Win_lock", "PMPI_Accumulate", "read", "write",
          "lam_ssi_rpi_sysv_recv"})
        EXPECT_NE(reg.find(name), instr::kInvalidFunc) << name;
    EXPECT_TRUE(instr::has_category(reg.info(reg.find("read")).categories,
                                    instr::Category::Io));
    EXPECT_TRUE(instr::has_category(reg.info(reg.find("PMPI_Barrier")).categories,
                                    instr::Category::Barrier));
}

TEST(World, FlavorNames) {
    EXPECT_STREQ(flavor_name(Flavor::Lam), "LAM/MPI");
    EXPECT_STREQ(flavor_name(Flavor::Mpich), "MPICH");
}

TEST(World, ObjectNameServices) {
    instr::Registry reg;
    World world(reg, {});
    const Comm c = world.create_comm({0});
    world.comm(c).name = "TestComm";
    EXPECT_EQ(world.object_name_of_comm(c), "TestComm");
    EXPECT_EQ(world.object_name_of_comm(999), "");
    const Win w = world.create_win(c);
    world.win(w).name = "TestWin";
    EXPECT_EQ(world.object_name_of_win(w), "TestWin");
}

}  // namespace
}  // namespace m2p::simmpi
