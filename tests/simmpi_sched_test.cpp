// Fiber scheduler unit tests (DESIGN.md section 12): the park/unpark
// state machine, deadline sweeping, broadcast wakeups, fiber-aware
// sleep, and the thread-mode WaitToken fallback -- exercised directly
// against sched::Scheduler, below the World/Rank layers that normally
// drive it.  Named Sched.* so the TSAN job's -R regex picks them up.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "simmpi/fiber.hpp"
#include "simmpi/sched.hpp"
#include "util/clock.hpp"

namespace m2p::simmpi::sched {
namespace {

using namespace std::chrono_literals;
using clk = std::chrono::steady_clock;

constexpr std::size_t kStack = 256 * 1024;

/// Block the (plain-thread) test body until @p pred holds, using the
/// thread-mode token the fibers unpark -- the same protocol World uses
/// for join completion.
template <class Pred>
void wait_for(const Pred& pred, std::chrono::seconds deadline = 10s) {
    const auto until = clk::now() + deadline;
    const auto& tok = current_wait_token();
    while (!pred()) {
        ASSERT_LT(clk::now(), until) << "predicate never held";
        tok->park_until(clk::now() + 5ms);
    }
}

TEST(Sched, ManyFibersCompleteOnOneWorker) {
    Scheduler s(1);
    constexpr int kFibers = 512;
    std::atomic<int> done{0};
    const auto& main_tok = current_wait_token();
    for (int i = 0; i < kFibers; ++i)
        s.spawn(
            [&] {
                done.fetch_add(1, std::memory_order_relaxed);
                main_tok->unpark();
            },
            kStack);
    wait_for([&] { return done.load() == kFibers; });
}

TEST(Sched, TargetedUnparkWakesExactlyTheParkedFiber) {
    Scheduler s(1);
    std::atomic<bool> ready{false}, woken{false}, bystander_woken{false};
    std::shared_ptr<WaitToken> parked_tok;
    std::mutex mu;
    const auto& main_tok = current_wait_token();

    s.spawn(
        [&] {
            {
                std::lock_guard lk(mu);
                parked_tok = current_wait_token();
            }
            ready.store(true);
            main_tok->unpark();
            while (!woken.load())
                current_wait_token()->park_until(clk::now() + 10s);
            main_tok->unpark();
        },
        kStack);
    // A second parked fiber that must NOT wake from the targeted unpark
    // (only its own generous deadline or test teardown releases it).
    std::atomic<bool> stop_bystander{false};
    s.spawn(
        [&] {
            current_wait_token()->park_until(clk::now() + 500ms);
            bystander_woken.store(true);
            while (!stop_bystander.load())
                current_wait_token()->park_until(clk::now() + 5ms);
            main_tok->unpark();
        },
        kStack);

    wait_for([&] { return ready.load(); });
    std::this_thread::sleep_for(20ms);  // let the fiber actually park
    woken.store(true);
    {
        std::lock_guard lk(mu);
        parked_tok->unpark();
    }
    wait_for([&] { return woken.load(); });
    EXPECT_FALSE(bystander_woken.load())
        << "targeted unpark leaked to another fiber";
    stop_bystander.store(true);
    wait_for([&] { return bystander_woken.load(); });
}

TEST(Sched, UnparkBeforeParkIsConsumedByNextPark) {
    Scheduler s(1);
    std::atomic<bool> done{false};
    const auto& main_tok = current_wait_token();
    s.spawn(
        [&] {
            const auto& tok = current_wait_token();
            tok->unpark();  // pending notify on an idle token
            const auto t0 = clk::now();
            tok->park_until(t0 + 10s);  // must return at once, not in 10s
            EXPECT_LT(clk::now() - t0, 2s);
            done.store(true);
            main_tok->unpark();
        },
        kStack);
    wait_for([&] { return done.load(); });
}

TEST(Sched, RacingUnparkAgainstParkAnnouncementIsNeverLost) {
    // Hammer the Idle->Parking announcement window: the waker thread
    // fires unpark() concurrently with the fiber's park_until(), so
    // some rounds land between the fast-path load and the kParking
    // transition.  A blind store there (instead of a CAS) overwrites
    // the notify and the round stalls for the full 10 s deadline.
    Scheduler s(1);
    constexpr int kRounds = 10000;
    std::atomic<int> acked{0};
    std::atomic<bool> go{false}, done{false}, tok_ready{false};
    std::shared_ptr<WaitToken> tok;
    const auto& main_tok = current_wait_token();
    s.spawn(
        [&] {
            tok = current_wait_token();
            tok_ready.store(true);
            for (int i = 0; i < kRounds; ++i) {
                while (!go.exchange(false, std::memory_order_acq_rel))
                    current_wait_token()->park_until(clk::now() + 10s);
                acked.fetch_add(1, std::memory_order_release);
            }
            done.store(true);
            main_tok->unpark();
        },
        kStack);
    while (!tok_ready.load()) std::this_thread::sleep_for(1ms);
    for (int i = 0; i < kRounds; ++i) {
        go.store(true, std::memory_order_release);
        tok->unpark();
        const auto until = clk::now() + 10s;
        while (acked.load(std::memory_order_acquire) <= i)
            ASSERT_LT(clk::now(), until) << "unpark lost at round " << i;
    }
    wait_for([&] { return done.load(); });
}

TEST(Sched, RankCpuSecondsChargesTheFiberNotTheWorker) {
    // Two fibers share one worker: a burner that spins and an idler
    // that parks while the burner owns the worker.  Reading the thread
    // CPU clock would charge the idler the burner's work; the
    // fiber-aware rank_cpu_seconds() provider must not.
    Scheduler s(1);
    std::atomic<bool> stop{false}, done{false};
    std::atomic<std::int64_t> burner_ns{0}, idler_ns{0};
    std::atomic<double> idle_delta{-1.0}, burner_total{0.0};
    const auto& main_tok = current_wait_token();
    s.spawn(
        [&] {
            while (!stop.load(std::memory_order_acquire)) {
                volatile std::uint64_t acc = 0;
                for (int i = 0; i < 200000; ++i)
                    acc += static_cast<std::uint64_t>(i);
                maybe_yield();
            }
            burner_total.store(util::rank_cpu_seconds());
            main_tok->unpark();
        },
        kStack, &burner_ns);
    s.spawn(
        [&] {
            const double t0 = util::rank_cpu_seconds();
            sleep_for(150ms);  // the burner owns the worker meanwhile
            const double t1 = util::rank_cpu_seconds();
            idle_delta.store(t1 - t0);
            stop.store(true, std::memory_order_release);
            done.store(true);
            main_tok->unpark();
        },
        kStack, &idler_ns);
    wait_for([&] { return done.load(); });
    wait_for([&] { return burner_total.load() > 0.0; });
    EXPECT_GE(idle_delta.load(), 0.0) << "per-fiber CPU went backwards";
    EXPECT_LT(idle_delta.load(), 0.05)
        << "idle fiber was charged the worker's CPU";
    EXPECT_GT(burner_total.load(), 0.05);
}

TEST(Sched, DeadlineSweeperReleasesAnUnnotifiedPark) {
    Scheduler s(1);
    std::atomic<bool> done{false};
    const auto& main_tok = current_wait_token();
    s.spawn(
        [&] {
            const auto t0 = clk::now();
            current_wait_token()->park_until(t0 + 50ms);
            // Nobody unparks us: only the deadline can release the park.
            EXPECT_GE(clk::now() - t0, 40ms);
            done.store(true);
            main_tok->unpark();
        },
        kStack);
    wait_for([&] { return done.load(); });
}

TEST(Sched, UnparkAllParkedWakesEveryParkedFiber) {
    Scheduler s(2);
    constexpr int kFibers = 32;
    std::atomic<int> parked_hint{0}, released{0};
    std::atomic<bool> go{false};
    const auto& main_tok = current_wait_token();
    for (int i = 0; i < kFibers; ++i)
        s.spawn(
            [&] {
                parked_hint.fetch_add(1);
                while (!go.load())
                    current_wait_token()->park_until(clk::now() + 10s);
                released.fetch_add(1);
                main_tok->unpark();
            },
            kStack);
    wait_for([&] { return parked_hint.load() == kFibers; });
    std::this_thread::sleep_for(50ms);  // give everyone time to park
    go.store(true);
    // The death-epoch/poison broadcast path: every parked fiber must
    // re-check its predicate well before its 10 s deadline.
    const auto t0 = clk::now();
    s.unpark_all_parked();
    wait_for([&] { return released.load() == kFibers; });
    EXPECT_LT(clk::now() - t0, 5s);
}

TEST(Sched, SleepingFibersShareOneWorker) {
    // 16 fibers each sleep 100 ms on a single worker.  With a wedging
    // sleep this takes 1.6 s; with a parking sleep, about 100 ms.
    Scheduler s(1);
    constexpr int kFibers = 16;
    std::atomic<int> done{0};
    const auto& main_tok = current_wait_token();
    const auto t0 = clk::now();
    for (int i = 0; i < kFibers; ++i)
        s.spawn(
            [&] {
                sleep_for(100ms);
                done.fetch_add(1);
                main_tok->unpark();
            },
            kStack);
    wait_for([&] { return done.load() == kFibers; });
    EXPECT_LT(clk::now() - t0, 1s) << "sleep_for wedged the worker";
}

TEST(Sched, OnFiberAndSliceClockReflectContext) {
    EXPECT_FALSE(on_fiber());
    EXPECT_EQ(current_slice_cpu_ns(), 0);
    Scheduler s(1);
    std::atomic<bool> done{false};
    std::atomic<bool> was_on_fiber{false};
    std::atomic<std::int64_t> slice_ns{-1};
    const auto& main_tok = current_wait_token();
    s.spawn(
        [&] {
            was_on_fiber.store(on_fiber());
            // Burn a little CPU so the slice clock has something to show.
            volatile std::uint64_t acc = 0;
            for (int i = 0; i < 2'000'000; ++i) acc += static_cast<std::uint64_t>(i);
            slice_ns.store(current_slice_cpu_ns());
            done.store(true);
            main_tok->unpark();
        },
        kStack);
    wait_for([&] { return done.load(); });
    EXPECT_TRUE(was_on_fiber.load());
    EXPECT_GT(slice_ns.load(), 0);
}

TEST(Sched, ThreadModeTokenParksAndUnparksAcrossThreads) {
    // No scheduler at all: the fallback must work for plain OS threads
    // (the retained thread-per-rank engine path).
    const auto& tok = current_wait_token();
    ASSERT_NE(tok, nullptr);
    std::atomic<bool> flag{false};
    std::thread waker([&] {
        std::this_thread::sleep_for(30ms);
        flag.store(true);
        tok->unpark();
    });
    const auto until = clk::now() + 10s;
    while (!flag.load()) {
        ASSERT_LT(clk::now(), until);
        tok->park_until(clk::now() + 5s);
    }
    waker.join();
    SUCCEED();
}

TEST(Sched, MaybeYieldKeepsBusyLoopsFair) {
    // Two busy-polling fibers on one worker: without the fairness point
    // the first to run would spin forever.  maybe_yield is strided, so
    // each loop iteration calls it once and the stride (64) is crossed
    // quickly.
    Scheduler s(1);
    std::atomic<int> turn{0};
    std::atomic<bool> done{false};
    const auto& main_tok = current_wait_token();
    const auto spin_until_turn = [&](int mine, int rounds) {
        for (int r = 0; r < rounds; ++r) {
            while (turn.load(std::memory_order_acquire) % 2 != mine)
                maybe_yield();  // busy poll, cooperative
            turn.fetch_add(1, std::memory_order_acq_rel);
        }
    };
    s.spawn([&] { spin_until_turn(0, 50); }, kStack);
    s.spawn(
        [&] {
            spin_until_turn(1, 50);
            done.store(true);
            main_tok->unpark();
        },
        kStack);
    wait_for([&] { return done.load(); });
    EXPECT_EQ(turn.load(), 100);
}

TEST(Sched, WorkIsStolenAcrossWorkers) {
    // Spawn from the injector with 4 workers: completion of all fibers
    // requires idle workers to pull from the shared queue / steal.
    Scheduler s(4);
    constexpr int kFibers = 64;
    std::atomic<int> done{0};
    const auto& main_tok = current_wait_token();
    for (int i = 0; i < kFibers; ++i)
        s.spawn(
            [&] {
                sleep_for(1ms);
                done.fetch_add(1);
                main_tok->unpark();
            },
            kStack);
    wait_for([&] { return done.load() == kFibers; });
    EXPECT_EQ(s.worker_count(), 4u);
}

}  // namespace
}  // namespace m2p::simmpi::sched
