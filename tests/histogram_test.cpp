#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/histogram.hpp"

namespace m2p::core {
namespace {

TEST(Histogram, AccumulatesIntoCorrectBin) {
    Histogram h(0.0, 0.1, 8);
    h.add(0.05, 1.0);
    h.add(0.15, 2.0);
    h.add(0.16, 3.0);
    const auto v = h.values();
    ASSERT_EQ(v.size(), 2u);
    EXPECT_DOUBLE_EQ(v[0], 1.0);
    EXPECT_DOUBLE_EQ(v[1], 5.0);
}

TEST(Histogram, FoldDoublesBinWidthAndConservesTotal) {
    Histogram h(0.0, 0.1, 4);
    for (int i = 0; i < 4; ++i) h.add(0.1 * i + 0.01, 1.0);
    EXPECT_EQ(h.folds(), 0);
    h.add(0.45, 1.0);  // beyond capacity: forces a fold
    EXPECT_EQ(h.folds(), 1);
    EXPECT_DOUBLE_EQ(h.bin_width(), 0.2);
    EXPECT_DOUBLE_EQ(h.total(), 5.0);
    const auto v = h.values();
    ASSERT_EQ(v.size(), 3u);
    EXPECT_DOUBLE_EQ(v[0], 2.0);  // bins 0+1 combined
    EXPECT_DOUBLE_EQ(v[1], 2.0);  // bins 2+3 combined
    EXPECT_DOUBLE_EQ(v[2], 1.0);
}

TEST(Histogram, RepeatedFoldsReachRequestedTime) {
    // The paper's experiments saw granularity go from 0.2 s to 0.8 s:
    // exactly two folds.
    Histogram h(0.0, 0.2, 16);
    h.add(0.2 * 16 * 4 - 0.1, 1.0);  // needs 2 folds to cover
    EXPECT_EQ(h.folds(), 2);
    EXPECT_DOUBLE_EQ(h.bin_width(), 0.8);
}

TEST(Histogram, ValuesBeforeOriginClampToBinZero) {
    Histogram h(10.0, 0.1, 4);
    h.add(9.0, 3.0);
    EXPECT_DOUBLE_EQ(h.values()[0], 3.0);
}

TEST(Histogram, RateExcludingEndpointsDropsPartialBins) {
    Histogram h(0.0, 1.0, 8);
    // First bin partially covered, middle full, last partial.
    h.add(0.9, 1.0);
    h.add(1.5, 10.0);
    h.add(2.5, 10.0);
    h.add(3.1, 2.0);
    EXPECT_DOUBLE_EQ(h.rate(false), 23.0 / 4.0);
    EXPECT_DOUBLE_EQ(h.rate(true), 20.0 / 2.0);  // endpoints excluded
}

TEST(Histogram, TotalIsExactAcrossFolds) {
    Histogram h(0.0, 0.01, 8);
    double expect = 0.0;
    for (int i = 0; i < 1000; ++i) {
        h.add(0.001 * i, 0.5);
        expect += 0.5;
    }
    EXPECT_DOUBLE_EQ(h.total(), expect);
}

TEST(Histogram, ConcurrentAddsAreSafeAndConserved) {
    Histogram h(0.0, 0.001, 16);
    constexpr int kThreads = 4, kAdds = 5000;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t)
        ts.emplace_back([&h] {
            for (int i = 0; i < kAdds; ++i) h.add(0.0001 * i, 1.0);
        });
    for (auto& t : ts) t.join();
    EXPECT_DOUBLE_EQ(h.total(), kThreads * kAdds);
}

TEST(Histogram, MultiWriterTotalExactAcrossFolds) {
    // Striped writers spanning time ranges that force repeated folds:
    // total() must equal the exact sum of all contributions, and the
    // surviving bins must sum to the same number.
    Histogram h(0.0, 0.001, 16, /*stripes=*/8);
    constexpr int kThreads = 8;
    constexpr int kAdds = 4000;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t)
        ts.emplace_back([&h, t] {
            // Each thread covers a different, growing time range so
            // folds race with adds that straddle the old/new width.
            for (int i = 0; i < kAdds; ++i)
                h.add(0.0005 * i * (t + 1), 1.0 + 0.25 * t);
        });
    for (auto& t : ts) t.join();
    double expect = 0.0;
    for (int t = 0; t < kThreads; ++t) expect += kAdds * (1.0 + 0.25 * t);
    EXPECT_DOUBLE_EQ(h.total(), expect);
    EXPECT_GT(h.folds(), 0);
    double binsum = 0.0;
    for (double v : h.values()) binsum += v;
    EXPECT_NEAR(binsum, expect, 1e-6 * expect);
}

TEST(Histogram, StripingPreservesSingleWriterResultsExactly) {
    // Same sample stream into a 1-stripe and a many-stripe histogram
    // from one thread: bins, width, folds, and total must match
    // bit-for-bit (replay goes through identical arithmetic).
    Histogram a(0.0, 0.01, 32, 1);
    Histogram b(0.0, 0.01, 32, 16);
    for (int i = 0; i < 5000; ++i) {
        const double t = 0.0007 * i;
        const double v = 0.5 + (i % 7) * 0.125;
        a.add(t, v);
        b.add(t, v);
    }
    EXPECT_EQ(a.folds(), b.folds());
    EXPECT_DOUBLE_EQ(a.bin_width(), b.bin_width());
    EXPECT_DOUBLE_EQ(a.total(), b.total());
    const auto va = a.values(), vb = b.values();
    ASSERT_EQ(va.size(), vb.size());
    for (std::size_t i = 0; i < va.size(); ++i) EXPECT_DOUBLE_EQ(va[i], vb[i]);
}

TEST(Histogram, RejectsBadConfig) {
    EXPECT_THROW(Histogram(0.0, 0.0, 8), std::invalid_argument);
    EXPECT_THROW(Histogram(0.0, 0.1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace m2p::core
