// MPE-style tracing + Jumpshot-style analyses (statistical preview /
// time lines) used as independent cross-checks in the paper.
#include <gtest/gtest.h>

#include "core/session.hpp"
#include "pperfmark/pperfmark.hpp"
#include "trace/mpe.hpp"

namespace m2p::trace {
namespace {

TEST(TraceLog, RecordsAndBounds) {
    TraceLog log;
    log.record(0, "MPI_Send", 1.0, 2.0);
    log.record(1, "MPI_Recv", 1.5, 4.0);
    EXPECT_EQ(log.size(), 2u);
    EXPECT_DOUBLE_EQ(log.begin_time(), 1.0);
    EXPECT_DOUBLE_EQ(log.end_time(), 4.0);
}

TEST(StatisticalPreview, AveragesOccupancy) {
    TraceLog log;
    // Over [0,10]: rank0 in Recv for 10s, rank1 in Recv for 5s ->
    // average 1.5 processes in MPI_Recv.
    log.record(0, "MPI_Recv", 0.0, 10.0);
    log.record(1, "MPI_Recv", 0.0, 5.0);
    log.record(1, "MPI_Send", 5.0, 10.0);
    EXPECT_DOUBLE_EQ(statistical_preview(log, "MPI_Recv"), 1.5);
    EXPECT_DOUBLE_EQ(statistical_preview(log, "MPI_Send"), 0.5);
    EXPECT_DOUBLE_EQ(statistical_preview(log, "MPI_Barrier"), 0.0);
}

TEST(StateTotals, SumsPerState) {
    TraceLog log;
    log.record(0, "MPI_Barrier", 0.0, 2.0);
    log.record(1, "MPI_Barrier", 0.0, 3.0);
    const auto totals = state_totals(log);
    EXPECT_DOUBLE_EQ(totals.at("MPI_Barrier"), 5.0);
}

TEST(TimeLines, RendersDominantStatePerCell) {
    TraceLog log;
    log.record(0, "MPI_Recv", 0.0, 1.0);
    log.record(1, "MPI_Send", 0.0, 0.2);
    const std::string out = render_timelines(log, 2, 10);
    // Rank 0 fully in Recv ('R'); rank 1 mostly computing ('-').
    EXPECT_NE(out.find("p0 |RRRRRRRRRR|"), std::string::npos) << out;
    EXPECT_NE(out.find("p1 |SS--------|"), std::string::npos) << out;
    EXPECT_NE(out.find("R=MPI_Recv"), std::string::npos);
}

TEST(MpeLogger, CapturesMpiIntervalsOfARealRun) {
    core::Session s(simmpi::Flavor::Lam);
    ppm::Params p;
    p.iterations = 30;
    p.time_to_waste = 1;
    p.waste_unit_seconds = 0.002;
    ppm::register_all(s.world(), p);
    MpeLogger mpe(s.world());
    s.run(ppm::kIntensiveServer, 3);
    const TraceLog& log = mpe.log();
    EXPECT_GT(log.size(), 0u);
    const auto totals = state_totals(log);
    // The clients spend most of their time in MPI_Recv waiting on the
    // busy server (paper Figs 12/13).
    EXPECT_GT(totals.at("MPI_Recv"), totals.at("MPI_Send"));
    // Roughly (nclients) processes are in MPI_Recv at any time; allow
    // wide slack on a loaded host.
    EXPECT_GT(statistical_preview(log, "MPI_Recv"), 0.8);
}

TEST(MpeLogger, RandomBarrierShowsMostRanksInBarrier) {
    core::Session s(simmpi::Flavor::Lam);
    ppm::Params p;
    p.iterations = 40;
    p.time_to_waste = 2;
    p.waste_unit_seconds = 0.002;
    ppm::register_all(s.world(), p);
    MpeLogger mpe(s.world());
    s.run(ppm::kRandomBarrier, 4);
    // Paper Fig 17: "of the four processes ... approximately three of
    // them were executing in MPI_Barrier at any given time."
    const double avg = statistical_preview(mpe.log(), "MPI_Barrier");
    EXPECT_GT(avg, 2.0);
    EXPECT_LT(avg, 4.0);
}

TEST(MpeLogger, IsAZeroSnippetBackendOfTheFlightRecorder) {
    // The rebuilt MPE layer reads the always-on flight recorder instead
    // of inserting its own snippets: constructing a logger must leave
    // the instrumentation state of every MPI entry point untouched.
    core::Session s(simmpi::Flavor::Lam);
    instr::Registry& reg = s.registry();
    const instr::FuncId f = reg.find("PMPI_Send");
    const std::size_t before = reg.snippet_count(f, instr::Where::Entry);
    MpeLogger mpe(s.world());
    EXPECT_EQ(reg.snippet_count(f, instr::Where::Entry), before);
    EXPECT_EQ(mpe.log().size(), 0u);  // nothing ran since construction
}

TEST(MpeLogger, ScopesTheLogToCallsAfterConstruction) {
    // Two loggers around the same run: one constructed before, one
    // after.  The late one must see none of the run's intervals even
    // though the recorder still holds them.
    core::Session s(simmpi::Flavor::Lam);
    ppm::Params p;
    p.iterations = 10;
    ppm::register_all(s.world(), p);
    MpeLogger early(s.world());
    s.run(ppm::kSmallMessages, 2);
    MpeLogger late(s.world());
    EXPECT_GT(early.log().size(), 0u);
    EXPECT_EQ(late.log().size(), 0u);
}

TEST(TimeLines, LegendCoversWinStates) {
    TraceLog log;
    log.record(0, "MPI_Win_fence", 0.0, 1.0);
    log.record(1, "MPI_Win_start", 0.0, 1.0);
    const std::string out = render_timelines(log, 2, 4);
    EXPECT_NE(out.find("F=MPI_Win_fence"), std::string::npos);
    EXPECT_NE(out.find("W=MPI_Win_start"), std::string::npos);
}

}  // namespace
}  // namespace m2p::trace
