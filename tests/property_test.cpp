// Property-style parameterized sweeps across the invariants the
// system must hold for arbitrary configurations:
//  * message conservation (every byte sent is received) over process
//    counts, payload sizes (eager & rendezvous) and flavors,
//  * collective correctness across process counts and datatypes,
//  * histogram total conservation under random folding pressure,
//  * tool byte counters equal ground truth for arbitrary mixes.
#include <gtest/gtest.h>

#include <random>

#include "core/metrics.hpp"
#include "core/session.hpp"
#include "simmpi/launcher.hpp"
#include "simmpi/rank.hpp"

namespace m2p {
namespace {

using simmpi::Comm;
using simmpi::Flavor;
using simmpi::Rank;

// ---------------------------------------------------------------------------
// Message conservation sweep: (flavor, nprocs, payload bytes)
// ---------------------------------------------------------------------------

using MsgParam = std::tuple<Flavor, int, int>;

class MessageConservation : public ::testing::TestWithParam<MsgParam> {};

TEST_P(MessageConservation, AllToRootDeliversEveryByteIntact) {
    const auto [flavor, nprocs, bytes] = GetParam();
    instr::Registry reg;
    simmpi::World::Config cfg;
    cfg.flavor = flavor;
    simmpi::World world(reg, cfg);
    std::atomic<long long> received_bytes{0};
    std::atomic<int> corrupt{0};
    constexpr int kMsgsPerSender = 7;

    world.register_program("prog", [&, nprocs = nprocs, bytes = bytes](
                                       Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        if (me == 0) {
            std::vector<char> buf(static_cast<std::size_t>(bytes));
            for (int i = 0; i < kMsgsPerSender * (nprocs - 1); ++i) {
                simmpi::Status st;
                r.MPI_Recv(buf.data(), bytes, simmpi::MPI_BYTE, simmpi::MPI_ANY_SOURCE,
                           simmpi::MPI_ANY_TAG, w, &st);
                received_bytes += st.count_bytes;
                // Payload pattern: byte k of msg (src,tag) is
                // (src*31 + tag*17 + k) & 0x7f.
                for (int k = 0; k < st.count_bytes; k += 97)
                    if (buf[static_cast<std::size_t>(k)] !=
                        static_cast<char>((st.MPI_SOURCE * 31 + st.MPI_TAG * 17 + k) &
                                          0x7f))
                        ++corrupt;
            }
        } else {
            std::vector<char> buf(static_cast<std::size_t>(bytes));
            for (int t = 0; t < kMsgsPerSender; ++t) {
                for (int k = 0; k < bytes; ++k)
                    buf[static_cast<std::size_t>(k)] =
                        static_cast<char>((me * 31 + t * 17 + k) & 0x7f);
                r.MPI_Send(buf.data(), bytes, simmpi::MPI_BYTE, 0, t, w);
            }
        }
        r.MPI_Finalize();
    });
    simmpi::LaunchPlan plan;
    for (int i = 0; i < nprocs; ++i) plan.placements.push_back("n");
    simmpi::launch(world, "prog", {}, plan);
    world.join_all();

    EXPECT_EQ(received_bytes.load(),
              static_cast<long long>(kMsgsPerSender) * (nprocs - 1) * bytes);
    EXPECT_EQ(corrupt.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MessageConservation,
    ::testing::Combine(::testing::Values(Flavor::Lam, Flavor::Mpich),
                       ::testing::Values(2, 3, 5),
                       // spans eager (<=4096) and rendezvous paths
                       ::testing::Values(1, 4096, 20000)),
    [](const ::testing::TestParamInfo<MsgParam>& i) {
        return std::string(std::get<0>(i.param) == Flavor::Lam ? "Lam" : "Mpich") +
               "_np" + std::to_string(std::get<1>(i.param)) + "_b" +
               std::to_string(std::get<2>(i.param));
    });

// ---------------------------------------------------------------------------
// Collective correctness sweep: (flavor, nprocs)
// ---------------------------------------------------------------------------

using CollParam = std::tuple<Flavor, int>;

class CollectiveCorrectness : public ::testing::TestWithParam<CollParam> {};

TEST_P(CollectiveCorrectness, AllreduceAgreesWithSerialReduction) {
    const auto [flavor, nprocs] = GetParam();
    instr::Registry reg;
    simmpi::World::Config cfg;
    cfg.flavor = flavor;
    simmpi::World world(reg, cfg);
    std::atomic<int> failures{0};
    world.register_program("prog", [&, nprocs = nprocs](Rank& r,
                                                        const std::vector<std::string>&) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        std::mt19937 rng(77);  // same stream everywhere
        for (int round = 0; round < 10; ++round) {
            // Every rank can compute everyone's contribution and thus
            // the expected global result.
            std::vector<std::int64_t> contributions(
                static_cast<std::size_t>(nprocs));
            for (auto& c : contributions)
                c = static_cast<std::int64_t>(rng() % 1000);
            std::int64_t expect_sum = 0, expect_max = contributions[0],
                         expect_min = contributions[0];
            for (std::int64_t c : contributions) {
                expect_sum += c;
                expect_max = std::max(expect_max, c);
                expect_min = std::min(expect_min, c);
            }
            const std::int64_t mine = contributions[static_cast<std::size_t>(me)];
            std::int64_t sum = 0, mx = 0, mn = 0;
            r.MPI_Allreduce(&mine, &sum, 1, simmpi::MPI_LONG, simmpi::MPI_SUM, w);
            r.MPI_Allreduce(&mine, &mx, 1, simmpi::MPI_LONG, simmpi::MPI_MAX, w);
            r.MPI_Allreduce(&mine, &mn, 1, simmpi::MPI_LONG, simmpi::MPI_MIN, w);
            if (sum != expect_sum || mx != expect_max || mn != expect_min) ++failures;
        }
        r.MPI_Finalize();
    });
    simmpi::LaunchPlan plan;
    for (int i = 0; i < nprocs; ++i) plan.placements.push_back("n");
    simmpi::launch(world, "prog", {}, plan);
    world.join_all();
    EXPECT_EQ(failures.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CollectiveCorrectness,
    ::testing::Combine(::testing::Values(Flavor::Lam, Flavor::Mpich),
                       ::testing::Values(1, 2, 3, 4, 7)),
    [](const ::testing::TestParamInfo<CollParam>& i) {
        return std::string(std::get<0>(i.param) == Flavor::Lam ? "Lam" : "Mpich") +
               "_np" + std::to_string(std::get<1>(i.param));
    });

// ---------------------------------------------------------------------------
// Histogram conservation under random folding pressure
// ---------------------------------------------------------------------------

class HistogramConservation : public ::testing::TestWithParam<int> {};

TEST_P(HistogramConservation, TotalExactForRandomStreams) {
    std::mt19937 rng(static_cast<unsigned>(GetParam()));
    std::uniform_real_distribution<double> when(0.0, 5.0 * GetParam());
    std::uniform_real_distribution<double> what(0.0, 10.0);
    core::Histogram h(0.0, 0.01, 16);
    double expect = 0.0;
    // Feed monotonically later random times (folding only ever grows
    // the covered range).
    double t = 0.0;
    for (int i = 0; i < 2000; ++i) {
        t += when(rng) / 2000.0;
        const double v = what(rng);
        h.add(t, v);
        expect += v;
    }
    EXPECT_NEAR(h.total(), expect, 1e-9 * expect);
    // Bin sum equals the total too (no leakage during folds).
    double bin_sum = 0.0;
    for (double b : h.values()) bin_sum += b;
    EXPECT_NEAR(bin_sum, expect, 1e-9 * expect);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramConservation, ::testing::Values(1, 2, 3, 7, 42));

// ---------------------------------------------------------------------------
// Tool byte counters equal ground truth for random message mixes
// ---------------------------------------------------------------------------

class CounterExactness : public ::testing::TestWithParam<int> {};

TEST_P(CounterExactness, ToolCountsRandomTrafficExactly) {
    simmpi::World::Config wcfg;
    wcfg.start_paused = true;
    core::Session s(Flavor::Lam, {}, wcfg);
    std::mt19937 rng(static_cast<unsigned>(GetParam()));
    // Precompute a random traffic schedule both ranks share.
    struct Msg {
        int bytes;
        int tag;
    };
    std::vector<Msg> schedule;
    long long total_bytes = 0;
    for (int i = 0; i < 60; ++i) {
        Msg m{static_cast<int>(rng() % 9000 + 1), static_cast<int>(rng() % 5)};
        total_bytes += m.bytes;
        schedule.push_back(m);
    }
    s.world().register_program("prog", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        std::vector<char> buf(10000);
        for (const Msg& m : schedule) {
            if (me == 0)
                r.MPI_Send(buf.data(), m.bytes, simmpi::MPI_BYTE, 1, m.tag, w);
            else
                r.MPI_Recv(buf.data(), m.bytes, simmpi::MPI_BYTE, 0, m.tag, w, nullptr);
        }
        r.MPI_Finalize();
    });
    core::run_app_async(s.tool(), "prog", {}, 2);
    auto sent = s.tool().metrics().request("msg_bytes_sent", core::Focus{});
    auto recv = s.tool().metrics().request("msg_bytes_recv", core::Focus{});
    s.world().release_start_gate();
    s.world().join_all();
    EXPECT_DOUBLE_EQ(sent->total(), static_cast<double>(total_bytes));
    EXPECT_DOUBLE_EQ(recv->total(), static_cast<double>(total_bytes));
    s.tool().metrics().release(sent);
    s.tool().metrics().release(recv);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CounterExactness, ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace m2p
