// Tests for the utility/extension surfaces added on top of the core
// reproduction: histogram CSV export, MPE log save/load, MPI_Probe /
// MPI_Iprobe, and the Performance Consultant's machine-axis option.
#include <gtest/gtest.h>

#include "core/histogram.hpp"
#include "core/session.hpp"
#include "pperfmark/pperfmark.hpp"
#include "simmpi/launcher.hpp"
#include "simmpi/rank.hpp"
#include "simmpi/sched.hpp"
#include <chrono>
#include <thread>

#include "trace/mpe.hpp"
#include "util/clock.hpp"

namespace m2p {
namespace {

TEST(HistogramCsv, ExportsBinStartAndValue) {
    core::Histogram h(0.0, 0.5, 8);
    h.add(0.1, 3.0);
    h.add(0.7, 4.0);
    const std::string csv = h.to_csv();
    EXPECT_NE(csv.find("bin_start_seconds,value"), std::string::npos);
    EXPECT_NE(csv.find("0.000000,3"), std::string::npos);
    EXPECT_NE(csv.find("0.500000,4"), std::string::npos);
}

TEST(MpeLogFile, SaveLoadRoundTrips) {
    trace::TraceLog log;
    log.record(0, "MPI_Recv", 1.0, 2.5);
    log.record(2, "MPI_Barrier", 2.0, 2.25);
    const std::string text = trace::save_log(log);
    EXPECT_NE(text.find("# mpe-log v1"), std::string::npos);
    trace::TraceLog loaded;
    trace::load_log(text, &loaded);
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_DOUBLE_EQ(loaded.begin_time(), 1.0);
    EXPECT_DOUBLE_EQ(loaded.end_time(), 2.5);
    EXPECT_DOUBLE_EQ(trace::statistical_preview(loaded, "MPI_Recv"),
                     trace::statistical_preview(log, "MPI_Recv"));
}

TEST(MpeLogFile, LoadRejectsMalformedRows) {
    trace::TraceLog sink;
    EXPECT_THROW(trace::load_log("0 MPI_Recv not-a-number 2", &sink),
                 std::invalid_argument);
    EXPECT_THROW(trace::load_log("0 MPI_Recv 5.0 1.0", &sink), std::invalid_argument);
    EXPECT_NO_THROW(trace::load_log("# comment only\n", &sink));
}

TEST(Probe, BlockingProbeReportsEnvelopeWithoutConsuming) {
    instr::Registry reg;
    simmpi::World world(reg, {});
    world.register_program("p", [](simmpi::Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        const simmpi::Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        if (me == 0) {
            const std::int32_t v[3] = {1, 2, 3};
            r.MPI_Send(v, 3, simmpi::MPI_INT, 1, 9, w);
        } else {
            simmpi::Status st;
            ASSERT_EQ(r.MPI_Probe(simmpi::MPI_ANY_SOURCE, simmpi::MPI_ANY_TAG, w, &st),
                      simmpi::MPI_SUCCESS);
            EXPECT_EQ(st.MPI_SOURCE, 0);
            EXPECT_EQ(st.MPI_TAG, 9);
            int count = 0;
            r.MPI_Get_count(&st, simmpi::MPI_INT, &count);
            EXPECT_EQ(count, 3);
            // The probe did not consume: size the buffer and receive.
            std::vector<std::int32_t> buf(static_cast<std::size_t>(count));
            ASSERT_EQ(r.MPI_Recv(buf.data(), count, simmpi::MPI_INT, st.MPI_SOURCE,
                                 st.MPI_TAG, w, &st),
                      simmpi::MPI_SUCCESS);
            EXPECT_EQ(buf[2], 3);
        }
        r.MPI_Finalize();
    });
    simmpi::LaunchPlan plan;
    plan.placements = {"n", "n"};
    simmpi::launch(world, "p", {}, plan);
    world.join_all();
}

TEST(Probe, IprobePollsWithoutBlocking) {
    instr::Registry reg;
    simmpi::World world(reg, {});
    world.register_program("p", [](simmpi::Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        const simmpi::Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        if (me == 1) {
            int flag = -1;
            simmpi::Status st;
            ASSERT_EQ(r.MPI_Iprobe(0, 5, w, &flag, &st), simmpi::MPI_SUCCESS);
            EXPECT_EQ(flag, 0);  // nothing sent yet
            // Tell rank 0 we're ready, then poll until the message lands.
            char go = 1;
            r.MPI_Send(&go, 1, simmpi::MPI_BYTE, 0, 0, w);
            while (flag == 0) r.MPI_Iprobe(0, 5, w, &flag, &st);
            EXPECT_EQ(st.MPI_TAG, 5);
            int v = 0;
            r.MPI_Recv(&v, 1, simmpi::MPI_INT, 0, 5, w, nullptr);
            EXPECT_EQ(v, 77);
        } else {
            char go = 0;
            r.MPI_Recv(&go, 1, simmpi::MPI_BYTE, 1, 0, w, nullptr);
            const int v = 77;
            r.MPI_Send(&v, 1, simmpi::MPI_INT, 1, 5, w);
        }
        r.MPI_Finalize();
    });
    simmpi::LaunchPlan plan;
    plan.placements = {"n", "n"};
    simmpi::launch(world, "p", {}, plan);
    world.join_all();
}

TEST(Probe, ErrorPaths) {
    instr::Registry reg;
    simmpi::World world(reg, {});
    world.register_program("p", [](simmpi::Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        simmpi::Status st;
        int flag = 0;
        EXPECT_EQ(r.MPI_Probe(0, 0, 999, &st), simmpi::MPI_ERR_COMM);
        EXPECT_EQ(r.MPI_Iprobe(0, 0, r.MPI_COMM_WORLD(), nullptr, &st),
                  simmpi::MPI_ERR_ARG);
        EXPECT_EQ(r.MPI_Iprobe(9, 0, r.MPI_COMM_WORLD(), &flag, &st),
                  simmpi::MPI_ERR_RANK);
        r.MPI_Finalize();
    });
    simmpi::LaunchPlan plan;
    plan.placements = {"n"};
    simmpi::launch(world, "p", {}, plan);
    world.join_all();
}

TEST(MachineAxis, ConsultantCanPinTheBusyNode) {
    core::Session s(simmpi::Flavor::Lam);
    // Two nodes, two ranks each; only node0's ranks burn CPU.
    s.world().register_program("skew", [](simmpi::Rank& r,
                                          const std::vector<std::string>&) {
        r.MPI_Init();
        int me = 0;
        r.MPI_Comm_rank(r.MPI_COMM_WORLD(), &me);
        if (me < 2)
            util::burn_thread_cpu(0.7);
        else
            simmpi::sched::sleep_for(std::chrono::milliseconds(700));
        r.MPI_Finalize();
    });
    core::run_app_async(s.tool(), "skew", {}, 4, /*procs_per_node=*/2);
    core::PerformanceConsultant::Options o;
    o.eval_interval = 0.08;
    o.max_search_seconds = 2.5;
    o.refine_machines = true;
    o.refine_processes = false;
    core::PerformanceConsultant pc(s.tool(), o);
    const core::PCReport r = pc.search([&] { return !s.world().all_finished(); });
    s.world().join_all();
    EXPECT_TRUE(r.found("CPUBound", "/Machine/node0"))
        << core::PerformanceConsultant::render_condensed(r);
    EXPECT_FALSE(r.found("CPUBound", "/Machine/node1"))
        << core::PerformanceConsultant::render_condensed(r);
}

}  // namespace
}  // namespace m2p
