// Additional MDL grammar coverage: precedence, parenthesization,
// nested conditionals, daemon attribute forms, and negative cases.
#include <gtest/gtest.h>

#include "mdl/ast.hpp"

namespace m2p::mdl {
namespace {

const Stmt& only_stmt(const MdlFile& f) {
    return *f.metrics.at(0).foreachs.at(0).points.at(0).code.at(0);
}

TEST(MdlGrammar, MultiplicationBindsTighterThanAddition) {
    const MdlFile f = parse(R"(
metric m { name "m"; base is counter {
  foreach func in s { append preinsn func.entry (* m += 1 + 2 * 3; *) } } }
)");
    const Stmt& st = only_stmt(f);
    ASSERT_EQ(st.kind, Stmt::Kind::AddAssign);
    // Top node is '+', its rhs is '*'.
    EXPECT_EQ(st.value->op, "+");
    EXPECT_EQ(st.value->rhs->op, "*");
    EXPECT_EQ(st.value->lhs->number, 1);
}

TEST(MdlGrammar, ParenthesesOverridePrecedence) {
    const MdlFile f = parse(R"(
metric m { name "m"; base is counter {
  foreach func in s { append preinsn func.entry (* m += (1 + 2) * 3; *) } } }
)");
    const Stmt& st = only_stmt(f);
    EXPECT_EQ(st.value->op, "*");
    EXPECT_EQ(st.value->lhs->op, "+");
    EXPECT_EQ(st.value->rhs->number, 3);
}

TEST(MdlGrammar, NestedIfChains) {
    const MdlFile f = parse(R"(
constraint c /SyncObject/Message is counter {
  foreach func in s {
    prepend preinsn func.entry
      (* if ($arg[5] == $constraint[0]) if ($arg[4] == $constraint[1]) c = 1; *)
  } }
)");
    const Stmt& outer = *f.constraints.at(0).foreachs.at(0).points.at(0).code.at(0);
    ASSERT_EQ(outer.kind, Stmt::Kind::If);
    ASSERT_EQ(outer.body->kind, Stmt::Kind::If);
    EXPECT_EQ(outer.body->body->kind, Stmt::Kind::Assign);
}

TEST(MdlGrammar, NotEqualOperator) {
    const MdlFile f = parse(R"(
metric m { name "m"; base is counter {
  foreach func in s { append preinsn func.entry (* if ($arg[0] != 0) m++; *) } } }
)");
    EXPECT_EQ(only_stmt(f).value->op, "!=");
}

TEST(MdlGrammar, DaemonNumericAndBareAttributes) {
    const MdlFile f = parse(R"(
daemon d { command "paradynd"; flavor mpi; port 7700; }
)");
    const DaemonDef* d = f.find_daemon("d");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->attrs.at("flavor"), "mpi");
    EXPECT_EQ(d->attrs.at("port"), "7700");
}

TEST(MdlGrammar, MultipleFlavors) {
    const MdlFile f = parse(R"(
metric m { name "m"; flavor { mpi, pvm }; base is counter {
  foreach func in s { } } }
)");
    ASSERT_EQ(f.metrics.at(0).flavors.size(), 2u);
    EXPECT_EQ(f.metrics.at(0).flavors[1], "pvm");
}

TEST(MdlGrammar, MalformedCasesThrow) {
    // Missing (* ... *) body.
    EXPECT_THROW(parse("metric m { base is counter { foreach func in s { "
                       "append preinsn func.entry m++; } } }"),
                 ParseError);
    // Bad point position.
    EXPECT_THROW(parse("metric m { base is counter { foreach func in s { "
                       "append preinsn func.middle (* m++; *) } } }"),
                 ParseError);
    // Constraint without a path.
    EXPECT_THROW(parse("constraint c is counter { }"), ParseError);
    // $bogus[] reference.
    EXPECT_THROW(parse("metric m { base is counter { foreach func in s { "
                       "append preinsn func.entry (* m += $bogus[0]; *) } } }"),
                 ParseError);
    // Unterminated code region.
    EXPECT_THROW(parse("metric m { base is counter { foreach func in s { "
                       "append preinsn func.entry (* m++; } } }"),
                 ParseError);
    // Unknown base type.
    EXPECT_THROW(parse("metric m { base is stopwatch { } }"), ParseError);
}

TEST(MdlGrammar, ResourcePathsTokenizeAsUnits) {
    const MdlFile f = parse(R"(
constraint deep /SyncObject/Message/Nested is counter { }
)");
    EXPECT_EQ(f.constraints.at(0).path, "/SyncObject/Message/Nested");
}

}  // namespace
}  // namespace m2p::mdl
