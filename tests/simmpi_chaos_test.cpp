// Chaos stress: randomly seeded FaultPlans (one crash plus lossy
// links) over a communication-heavy program.  The point is not any
// particular survivor code -- it is that no seed can deadlock the
// world: every wait either completes, detects the death, or hits its
// deadline, and join_all always comes home.  Runs under TSAN in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "simmpi/faults.hpp"
#include "simmpi/launcher.hpp"
#include "simmpi/rank.hpp"
#include "simmpi/world.hpp"

namespace m2p::simmpi {
namespace {

/// Seeds to exercise: the committed defaults, unless M2P_CHAOS_SEEDS
/// is set (comma/space-separated integers).  The nightly CI soak sets
/// it to randomized values; SCOPED_TRACE prints the seed of any
/// failing round so it can be pinned as a regression.
std::vector<std::uint64_t> chaos_seeds(std::initializer_list<std::uint64_t> defaults) {
    const char* env = std::getenv("M2P_CHAOS_SEEDS");
    if (!env || !*env) return defaults;
    std::vector<std::uint64_t> seeds;
    std::istringstream is(env);
    std::string tok;
    while (std::getline(is, tok, ',')) {
        std::istringstream ts(tok);
        std::uint64_t s;
        while (ts >> s) seeds.push_back(s);
    }
    return seeds.empty() ? std::vector<std::uint64_t>(defaults) : seeds;
}

void chaos_round(Flavor flavor, std::uint64_t seed) {
    SCOPED_TRACE("flavor=" + std::string(flavor == Flavor::Lam ? "lam" : "mpich") +
                 " seed=" + std::to_string(seed));
    constexpr int kRanks = 4;
    instr::Registry reg;
    World::Config cfg;
    cfg.flavor = flavor;
    cfg.wait_deadline_seconds = 1.0;
    cfg.join_deadline_seconds = 20.0;
    cfg.faults = FaultPlan::chaos(seed, kRanks);
    World world(reg, cfg);
    std::atomic<int> errors_seen{0};
    world.register_program("chaotic", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        const Comm world_comm = r.MPI_COMM_WORLD();
        int me = 0, n = 0;
        r.MPI_Comm_rank(world_comm, &me);
        r.MPI_Comm_size(world_comm, &n);
        // Mixed traffic: a ring exchange, a reduction, and a barrier
        // per iteration; bail out at the first error so survivors do
        // not grind through hundreds of failing calls.
        int rc = MPI_SUCCESS;
        for (int i = 0; i < 80 && rc == MPI_SUCCESS; ++i) {
            int tok = me, got = 0;
            Status st;
            rc = r.MPI_Sendrecv(&tok, 1, MPI_INT, (me + 1) % n, 3, &got, 1, MPI_INT,
                                (me + n - 1) % n, 3, world_comm, &st);
            if (rc != MPI_SUCCESS) break;
            int sum = 0;
            rc = r.MPI_Allreduce(&tok, &sum, 1, MPI_INT, MPI_SUM, world_comm);
            if (rc != MPI_SUCCESS) break;
            rc = r.MPI_Barrier(world_comm);
        }
        if (rc != MPI_SUCCESS) ++errors_seen;
        r.MPI_Finalize();
    });
    LaunchPlan plan;
    for (int i = 0; i < kRanks; ++i)
        plan.placements.push_back("node" + std::to_string(i % 2));
    launch(world, "chaotic", {}, plan);
    world.join_all();

    EXPECT_TRUE(world.all_finished());
    // Which fault lands first depends on the seed: the scheduled crash
    // may be preempted by a dropped message whose deadline error makes
    // every rank bail before the victim reaches its kill call.  Either
    // way the plan must visibly engage -- a death or a surfaced error
    // -- and nothing may wedge.
    EXPECT_TRUE(!world.epitaphs().empty() || errors_seen.load() > 0);
    for (const auto& e : world.epitaphs())
        EXPECT_GT(e.global_rank, 0);  // chaos never kills rank 0
}

TEST(Chaos, SeededFaultPlansNeverDeadlockLam) {
    for (std::uint64_t seed : chaos_seeds({1, 7, 23})) chaos_round(Flavor::Lam, seed);
}

TEST(Chaos, SeededFaultPlansNeverDeadlockMpich) {
    for (std::uint64_t seed : chaos_seeds({2, 11, 42}))
        chaos_round(Flavor::Mpich, seed);
}

}  // namespace
}  // namespace m2p::simmpi
