#include <gtest/gtest.h>

#include "simmpi/launcher.hpp"
#include "simmpi/rank.hpp"
#include "simmpi/world.hpp"

namespace m2p::simmpi {
namespace {

class RmaTest : public ::testing::TestWithParam<Flavor> {
protected:
    void run(int n, std::function<void(Rank&)> fn) {
        instr::Registry reg;
        World::Config cfg;
        cfg.flavor = GetParam();
        World world(reg, cfg);
        world.register_program("prog",
                               [fn](Rank& r, const std::vector<std::string>&) { fn(r); });
        LaunchPlan plan;
        for (int i = 0; i < n; ++i) plan.placements.push_back("node0");
        launch(world, "prog", {}, plan);
        world.join_all();
    }
};

TEST_P(RmaTest, FencePutFenceMovesData) {
    run(2, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        std::vector<std::int32_t> mem(8, 0);
        Win win = MPI_WIN_NULL;
        ASSERT_EQ(r.MPI_Win_create(mem.data(), 32, 4, MPI_INFO_NULL, w, &win),
                  MPI_SUCCESS);
        r.MPI_Win_fence(0, win);
        if (me == 0) {
            const std::int32_t vals[2] = {11, 22};
            ASSERT_EQ(r.MPI_Put(vals, 2, MPI_INT, 1, 2, 2, MPI_INT, win), MPI_SUCCESS);
        }
        r.MPI_Win_fence(0, win);
        if (me == 1) {
            EXPECT_EQ(mem[2], 11);
            EXPECT_EQ(mem[3], 22);
        }
        ASSERT_EQ(r.MPI_Win_free(&win), MPI_SUCCESS);
        EXPECT_EQ(win, MPI_WIN_NULL);
        r.MPI_Finalize();
    });
}

TEST_P(RmaTest, GetReadsRemoteMemory) {
    run(2, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        std::vector<std::int32_t> mem(4, me == 1 ? 77 : 0);
        Win win = MPI_WIN_NULL;
        r.MPI_Win_create(mem.data(), 16, 4, MPI_INFO_NULL, w, &win);
        r.MPI_Win_fence(0, win);
        std::int32_t got = -1;
        if (me == 0)
            ASSERT_EQ(r.MPI_Get(&got, 1, MPI_INT, 1, 0, 1, MPI_INT, win), MPI_SUCCESS);
        r.MPI_Win_fence(0, win);
        if (me == 0) EXPECT_EQ(got, 77);
        r.MPI_Win_free(&win);
        r.MPI_Finalize();
    });
}

TEST_P(RmaTest, AccumulateSumsContributions) {
    run(4, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0, n = 0;
        r.MPI_Comm_rank(w, &me);
        r.MPI_Comm_size(w, &n);
        std::vector<std::int32_t> mem(2, 0);
        Win win = MPI_WIN_NULL;
        r.MPI_Win_create(mem.data(), 8, 4, MPI_INFO_NULL, w, &win);
        r.MPI_Win_fence(0, win);
        const std::int32_t v = me + 1;
        if (me != 0)
            ASSERT_EQ(r.MPI_Accumulate(&v, 1, MPI_INT, 0, 0, 1, MPI_INT, MPI_SUM, win),
                      MPI_SUCCESS);
        r.MPI_Win_fence(0, win);
        if (me == 0) EXPECT_EQ(mem[0], n * (n + 1) / 2 - 1);
        r.MPI_Win_free(&win);
        r.MPI_Finalize();
    });
}

TEST_P(RmaTest, PostStartCompleteWaitDelivers) {
    run(3, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0, n = 0;
        r.MPI_Comm_rank(w, &me);
        r.MPI_Comm_size(w, &n);
        std::vector<std::int32_t> mem(8, 0);
        Win win = MPI_WIN_NULL;
        r.MPI_Win_create(mem.data(), 32, 4, MPI_INFO_NULL, w, &win);
        Group wg = MPI_GROUP_NULL;
        r.MPI_Comm_group(w, &wg);
        for (int iter = 0; iter < 10; ++iter) {
            if (me == 0) {
                std::vector<int> origins;
                for (int i = 1; i < n; ++i) origins.push_back(i);
                Group og = MPI_GROUP_NULL;
                r.MPI_Group_incl(wg, n - 1, origins.data(), &og);
                ASSERT_EQ(r.MPI_Win_post(og, 0, win), MPI_SUCCESS);
                ASSERT_EQ(r.MPI_Win_wait(win), MPI_SUCCESS);
                for (int i = 1; i < n; ++i)
                    EXPECT_EQ(mem[static_cast<std::size_t>(i)], 100 * iter + i);
                r.MPI_Group_free(&og);
            } else {
                const int zero = 0;
                Group tg = MPI_GROUP_NULL;
                r.MPI_Group_incl(wg, 1, &zero, &tg);
                ASSERT_EQ(r.MPI_Win_start(tg, 0, win), MPI_SUCCESS);
                const std::int32_t v = 100 * iter + me;
                ASSERT_EQ(r.MPI_Put(&v, 1, MPI_INT, 0, me, 1, MPI_INT, win),
                          MPI_SUCCESS);
                ASSERT_EQ(r.MPI_Win_complete(win), MPI_SUCCESS);
                r.MPI_Group_free(&tg);
            }
        }
        r.MPI_Group_free(&wg);
        r.MPI_Win_free(&win);
        r.MPI_Finalize();
    });
}

TEST_P(RmaTest, PassiveTargetLockUnlock) {
    run(4, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0, n = 0;
        r.MPI_Comm_rank(w, &me);
        r.MPI_Comm_size(w, &n);
        std::vector<std::int32_t> mem(1, 0);
        Win win = MPI_WIN_NULL;
        r.MPI_Win_create(mem.data(), 4, 4, MPI_INFO_NULL, w, &win);
        const std::int32_t one = 1;
        constexpr int kIters = 25;
        for (int i = 0; i < kIters; ++i) {
            ASSERT_EQ(r.MPI_Win_lock(MPI_LOCK_EXCLUSIVE, 0, 0, win), MPI_SUCCESS);
            ASSERT_EQ(r.MPI_Accumulate(&one, 1, MPI_INT, 0, 0, 1, MPI_INT, MPI_SUM, win),
                      MPI_SUCCESS);
            ASSERT_EQ(r.MPI_Win_unlock(0, win), MPI_SUCCESS);
        }
        // All mutual exclusion done: check the counter after everyone
        // is finished.
        r.MPI_Barrier(w);
        if (me == 0) EXPECT_EQ(mem[0], n * kIters);
        r.MPI_Win_free(&win);
        r.MPI_Finalize();
    });
}

TEST_P(RmaTest, SharedLocksCoexist) {
    run(3, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        std::vector<std::int32_t> mem(1, 5);
        Win win = MPI_WIN_NULL;
        r.MPI_Win_create(mem.data(), 4, 4, MPI_INFO_NULL, w, &win);
        std::int32_t got = 0;
        ASSERT_EQ(r.MPI_Win_lock(MPI_LOCK_SHARED, 0, 0, win), MPI_SUCCESS);
        ASSERT_EQ(r.MPI_Get(&got, 1, MPI_INT, 0, 0, 1, MPI_INT, win), MPI_SUCCESS);
        ASSERT_EQ(r.MPI_Win_unlock(0, win), MPI_SUCCESS);
        EXPECT_EQ(got, 5);
        r.MPI_Win_free(&win);
        r.MPI_Finalize();
    });
}

TEST_P(RmaTest, WindowIdReuseAfterFree) {
    // Real implementations reuse window ids after MPI_Win_free; the
    // tool depends on this happening (N-M scheme, paper 4.2.1).
    instr::Registry reg;
    World::Config cfg;
    cfg.flavor = GetParam();
    World world(reg, cfg);
    std::vector<int> impl_ids;
    world.register_program("prog", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        std::vector<char> mem(16, 0);
        for (int i = 0; i < 3; ++i) {
            Win win = MPI_WIN_NULL;
            r.MPI_Win_create(mem.data(), 16, 1, MPI_INFO_NULL, w, &win);
            if (me == 0)
                impl_ids.push_back(static_cast<int>(world.win_impl_id(win)));
            r.MPI_Win_free(&win);
        }
        r.MPI_Finalize();
    });
    LaunchPlan plan;
    plan.placements = {"node0", "node0"};
    launch(world, "prog", {}, plan);
    world.join_all();
    ASSERT_EQ(impl_ids.size(), 3u);
    EXPECT_EQ(impl_ids[0], impl_ids[1]);  // id recycled
    EXPECT_EQ(impl_ids[1], impl_ids[2]);
}

TEST_P(RmaTest, ErrorPaths) {
    run(2, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        std::vector<std::int32_t> mem(4, 0);
        Win win = MPI_WIN_NULL;
        EXPECT_EQ(r.MPI_Win_create(mem.data(), -1, 4, MPI_INFO_NULL, w, &win),
                  MPI_ERR_ARG);
        ASSERT_EQ(r.MPI_Win_create(mem.data(), 16, 4, MPI_INFO_NULL, w, &win),
                  MPI_SUCCESS);
        std::int32_t v = 0;
        EXPECT_EQ(r.MPI_Put(&v, 1, MPI_INT, 9, 0, 1, MPI_INT, win), MPI_ERR_RANK);
        EXPECT_EQ(r.MPI_Put(&v, 1, MPI_INT, 1, 0, 2, MPI_INT, win), MPI_ERR_ARG);
        EXPECT_EQ(r.MPI_Put(&v, 1, MPI_INT, 1, 100, 1, MPI_INT, win), MPI_ERR_ARG);
        EXPECT_EQ(r.MPI_Put(&v, 1, MPI_INT, 1, 0, 1, MPI_INT, 999), MPI_ERR_WIN);
        EXPECT_EQ(r.MPI_Win_unlock(0, win), MPI_ERR_WIN);  // unlock without lock
        EXPECT_EQ(r.MPI_Win_lock(99, 0, 0, win), MPI_ERR_LOCKTYPE);
        EXPECT_EQ(r.MPI_Win_wait(win), MPI_ERR_WIN);  // wait without post
        r.MPI_Barrier(w);
        r.MPI_Win_free(&win);
        EXPECT_EQ(r.MPI_Win_fence(0, win), MPI_ERR_WIN);  // freed
        r.MPI_Finalize();
    });
}

TEST_P(RmaTest, LamFenceUsesBarrierMpichDoesNot) {
    instr::Registry reg;
    World::Config cfg;
    cfg.flavor = GetParam();
    World world(reg, cfg);
    std::atomic<int> barriers{0};
    world.register_program("prog", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        std::vector<char> mem(8, 0);
        Win win = MPI_WIN_NULL;
        r.MPI_Win_create(mem.data(), 8, 1, MPI_INFO_NULL, w, &win);
        r.MPI_Win_fence(0, win);
        r.MPI_Win_fence(0, win);
        r.MPI_Win_free(&win);
        r.MPI_Finalize();
    });
    reg.insert(reg.find("PMPI_Barrier"), instr::Where::Entry,
               [&](const instr::CallContext&) { ++barriers; });
    LaunchPlan plan;
    plan.placements = {"node0", "node0", "node0"};
    launch(world, "prog", {}, plan);
    world.join_all();
    // LAM implements MPI_Win_fence with MPI_Barrier (paper Fig 22).
    if (GetParam() == Flavor::Lam)
        EXPECT_GT(barriers.load(), 0);
    else
        EXPECT_EQ(barriers.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(Flavors, RmaTest,
                         ::testing::Values(Flavor::Lam, Flavor::Mpich),
                         [](const ::testing::TestParamInfo<Flavor>& i) {
                             return i.param == Flavor::Lam ? "Lam" : "Mpich";
                         });

}  // namespace
}  // namespace m2p::simmpi
