#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "instr/registry.hpp"

namespace m2p::instr {
namespace {

TEST(Registry, RegisterIsIdempotentAndMergesCategories) {
    Registry reg;
    const FuncId a = reg.register_function("f", "mod", static_cast<std::uint32_t>(Category::MsgSend));
    const FuncId b = reg.register_function("f", "mod", static_cast<std::uint32_t>(Category::MsgSync));
    EXPECT_EQ(a, b);
    EXPECT_TRUE(has_category(reg.info(a).categories, Category::MsgSend));
    EXPECT_TRUE(has_category(reg.info(a).categories, Category::MsgSync));
    EXPECT_EQ(reg.function_count(), 1u);
}

TEST(Registry, SameNameDifferentModuleAreDistinct) {
    Registry reg;
    const FuncId a = reg.register_function("f", "m1", 0);
    const FuncId b = reg.register_function("f", "m2", 0);
    EXPECT_NE(a, b);
    EXPECT_EQ(reg.find("f", "m2"), b);
}

TEST(Registry, FindReturnsInvalidForUnknown) {
    Registry reg;
    EXPECT_EQ(reg.find("nope"), kInvalidFunc);
}

TEST(Registry, CategoryQuery) {
    Registry reg;
    reg.register_function("s", "m", Category::MsgSend | Category::MsgSync);
    reg.register_function("r", "m", Category::MsgRecv | Category::MsgSync);
    reg.register_function("x", "m", 0);
    EXPECT_EQ(reg.functions_with(static_cast<std::uint32_t>(Category::MsgSync)).size(), 2u);
    EXPECT_EQ(reg.functions_with(Category::MsgSync | Category::MsgSend).size(), 1u);
}

TEST(Registry, ModuleListing) {
    Registry reg;
    reg.register_function("a", "m1", 0);
    reg.register_function("b", "m1", 0);
    reg.register_function("c", "m2", 0);
    EXPECT_EQ(reg.functions_in_module("m1").size(), 2u);
    EXPECT_EQ(reg.modules().size(), 2u);
}

TEST(Snippets, EntryAndReturnFire) {
    Registry reg;
    const FuncId f = reg.register_function("f", "m", 0);
    int entries = 0, returns = 0;
    reg.insert(f, Where::Entry, [&](const CallContext&) { ++entries; });
    reg.insert(f, Where::Return, [&](const CallContext&) { ++returns; });
    {
        FunctionGuard g(reg, f);
        EXPECT_EQ(entries, 1);
        EXPECT_EQ(returns, 0);
    }
    EXPECT_EQ(returns, 1);
}

TEST(Snippets, PrependRunsBeforeAppend) {
    Registry reg;
    const FuncId f = reg.register_function("f", "m", 0);
    std::vector<int> order;
    reg.insert(f, Where::Entry, [&](const CallContext&) { order.push_back(2); });
    reg.insert(f, Where::Entry, [&](const CallContext&) { order.push_back(1); },
               /*prepend=*/true);
    FunctionGuard g(reg, f);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
}

TEST(Snippets, RemoveStopsDelivery) {
    Registry reg;
    const FuncId f = reg.register_function("f", "m", 0);
    int count = 0;
    const SnippetHandle h =
        reg.insert(f, Where::Entry, [&](const CallContext&) { ++count; });
    { FunctionGuard g(reg, f); }
    EXPECT_TRUE(reg.remove(h));
    EXPECT_FALSE(reg.remove(h));  // second delete reports failure
    { FunctionGuard g(reg, f); }
    EXPECT_EQ(count, 1);
    EXPECT_EQ(reg.snippet_count(f, Where::Entry), 0u);
}

TEST(Snippets, ArgsVisibleAtEntryAndReturn) {
    Registry reg;
    const FuncId f = reg.register_function("f", "m", 0);
    std::int64_t seen_entry = 0, seen_return = 0;
    reg.insert(f, Where::Entry, [&](const CallContext& c) { seen_entry = c.args[1]; });
    reg.insert(f, Where::Return, [&](const CallContext& c) { seen_return = c.args[1]; });
    std::int64_t args[] = {7, 42};
    { FunctionGuard g(reg, f, args); }
    EXPECT_EQ(seen_entry, 42);
    EXPECT_EQ(seen_return, 42);
}

TEST(Snippets, ReturnSnippetSeesArgMutatedDuringCall) {
    // The tool's window-discovery snippet reads the out-param handle
    // written by the function body before the return point fires.
    Registry reg;
    const FuncId f = reg.register_function("f", "m", 0);
    std::int64_t seen = -1;
    reg.insert(f, Where::Return, [&](const CallContext& c) { seen = c.args[0]; });
    std::int64_t args[] = {0};
    {
        FunctionGuard g(reg, f, args);
        args[0] = 99;  // body fills the out-parameter
    }
    EXPECT_EQ(seen, 99);
}

TEST(Snippets, CurrentRankPropagates) {
    Registry reg;
    const FuncId f = reg.register_function("f", "m", 0);
    int seen = -2;
    reg.insert(f, Where::Entry, [&](const CallContext& c) { seen = c.rank; });
    set_current_rank(5);
    { FunctionGuard g(reg, f); }
    set_current_rank(-1);
    EXPECT_EQ(seen, 5);
}

TEST(Snippets, DispatchStatsCount) {
    Registry reg;
    const FuncId f = reg.register_function("f", "m", 0);
    reg.insert(f, Where::Entry, [](const CallContext&) {});
    reg.reset_stats();
    { FunctionGuard g(reg, f); }
    const DispatchStats s = reg.stats();
    EXPECT_EQ(s.events, 2u);            // entry + return
    EXPECT_EQ(s.snippets_executed, 1u); // only entry had a snippet
}

TEST(Snippets, ConcurrentInsertRemoveDispatchIsSafe) {
    Registry reg;
    const FuncId f = reg.register_function("f", "m", 0);
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> fired{0};
    std::thread mutator([&] {
        while (!stop) {
            const SnippetHandle h =
                reg.insert(f, Where::Entry, [&](const CallContext&) { ++fired; });
            reg.remove(h);
        }
    });
    for (int i = 0; i < 20000; ++i) FunctionGuard g(reg, f);
    stop = true;
    mutator.join();
    SUCCEED();  // no crash/race under TSAN-like stress
}

TEST(Registry, BadFuncIdThrows) {
    Registry reg;
    EXPECT_THROW(reg.info(42), std::out_of_range);
}

}  // namespace
}  // namespace m2p::instr
