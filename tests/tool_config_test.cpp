// Tool configuration plumbing: the PCL daemon definitions (with the
// paper's new mpi_implementation attribute), tunable thresholds
// driving the Performance Consultant, custom MDL metric files, and the
// daemon -> frontend report channel.
#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/session.hpp"
#include "mdl/default_metrics.hpp"
#include "pperfmark/pperfmark.hpp"

namespace m2p::core {
namespace {

using simmpi::Flavor;

TEST(PclConfig, DaemonDefinitionsCarryMpiImplementation) {
    Session s(Flavor::Lam);
    const mdl::MdlFile& f = s.tool().mdl_file();
    const mdl::DaemonDef* lam = f.find_daemon("pd_lam");
    const mdl::DaemonDef* mpich = f.find_daemon("pd_mpich");
    ASSERT_NE(lam, nullptr);
    ASSERT_NE(mpich, nullptr);
    EXPECT_EQ(lam->attrs.at("mpi_implementation"), "lam");
    EXPECT_EQ(mpich->attrs.at("mpi_implementation"), "mpich");
    EXPECT_EQ(lam->attrs.at("command"), "paradynd");
}

TEST(PclConfig, CustomMdlSourceOverridesTunables) {
    // Appending a tunable redefinition must win (later parse of the
    // full custom file).
    PerfTool::Options o;
    o.mdl_source = mdl::default_metrics_source() +
                   "\ntunable_constant PC_SyncThreshold 0.9;\n";
    instr::Registry reg;
    simmpi::World world(reg, {});
    PerfTool tool(world, o);
    EXPECT_DOUBLE_EQ(tool.tunable("PC_SyncThreshold", -1), 0.9);
}

TEST(PclConfig, ConsultantReadsThresholdTunables) {
    // With an absurd 0.99 sync threshold from the MDL file, even
    // small-messages' blatant bottleneck must test false.
    PerfTool::Options topts;
    topts.mdl_source = mdl::default_metrics_source() +
                       "\ntunable_constant PC_SyncThreshold 0.99;\n";
    Session s(Flavor::Lam, topts);
    ppm::Params p;
    p.iterations = 60000;
    ppm::register_all(s.world(), p);
    PerformanceConsultant::Options o;
    o.eval_interval = 0.06;
    o.max_search_seconds = 1.5;
    const PCReport r = s.run_with_consultant(ppm::kSmallMessages, 6, o);
    EXPECT_FALSE(r.found("ExcessiveSyncWaitingTime", ""));
}

TEST(PclConfig, BrokenMdlSourceThrowsAtAttach) {
    PerfTool::Options o;
    o.mdl_source = "metric broken {";
    instr::Registry reg;
    simmpi::World world(reg, {});
    EXPECT_THROW(PerfTool(world, o), mdl::ParseError);
}

TEST(Daemons, OnePerNodeAndReportsCounted) {
    Session s(Flavor::Lam);
    ppm::Params p;
    p.iterations = 5;
    ppm::register_all(s.world(), p);
    s.run(ppm::kSmallMessages, 6, /*procs_per_node=*/2);
    const std::vector<Daemon> ds = s.tool().daemons();
    ASSERT_EQ(ds.size(), 3u);  // 6 procs, 2 per node
    for (const Daemon& d : ds) EXPECT_EQ(d.ranks.size(), 2u);
    // Discovery reports (processes, comms, tags) flowed to the frontend.
    std::uint64_t total_reports = 0;
    for (const Daemon& d : ds) total_reports += d.reports_sent;
    EXPECT_GT(total_reports, 0u);
}

TEST(Daemons, FlushDrainsAllPendingReports) {
    Session s(Flavor::Lam);
    ppm::Params p;
    p.win_blast_count = 16;
    ppm::register_all(s.world(), p);
    s.run(ppm::kWincreateBlast, 2);  // run() flushes
    // After a flush, every window resource must be applied.
    EXPECT_EQ(s.tool().hierarchy().children("/SyncObject/Window", true).size(), 16u);
}

TEST(Daemons, BinWidthOptionControlsHistograms) {
    PerfTool::Options o;
    o.bin_width = 0.05;
    o.bins = 32;
    instr::Registry reg;
    simmpi::World world(reg, {});
    PerfTool tool(world, o);
    auto pair = tool.metrics().request("msgs_sent", Focus{});
    ASSERT_NE(pair, nullptr);
    EXPECT_DOUBLE_EQ(pair->histogram().bin_width(), 0.05);
    EXPECT_EQ(pair->histogram().capacity(), 32u);
    tool.metrics().release(pair);
}

}  // namespace
}  // namespace m2p::core
