#include <gtest/gtest.h>

#include "simmpi/launcher.hpp"
#include "simmpi/rank.hpp"

namespace m2p::simmpi {
namespace {

const std::vector<Node> kNodes = {{"node0", 2}, {"node1", 2}, {"node2", 1},
                                  {"node3", 1}, {"node4", 2}};

TEST(Machinefile, ParsesLamStyle) {
    const auto nodes = parse_machinefile(
        "# cluster nodes\n"
        "wyeast0 cpu=2\n"
        "wyeast1 cpu=2   # dual\n"
        "wyeast2\n");
    ASSERT_EQ(nodes.size(), 3u);
    EXPECT_EQ(nodes[0].name, "wyeast0");
    EXPECT_EQ(nodes[0].cpus, 2);
    EXPECT_EQ(nodes[2].cpus, 1);
}

TEST(Machinefile, ParsesMpichColonStyle) {
    const auto nodes = parse_machinefile("hostA:4\nhostB\n");
    ASSERT_EQ(nodes.size(), 2u);
    EXPECT_EQ(nodes[0].cpus, 4);
    EXPECT_EQ(nodes[1].cpus, 1);
}

// LAM placement notations (paper section 4.1.2).

TEST(LamPlan, DirectCpuCount) {
    // "-np n simply denotes that n processes be started on the first
    // n processors."
    const LaunchPlan p = plan_lam(kNodes, {"-np", "3"});
    ASSERT_TRUE(p.ok);
    EXPECT_EQ(p.placements,
              (std::vector<std::string>{"node0", "node0", "node1"}));
}

TEST(LamPlan, NodeSpecN) {
    // "N" means one copy per node in the LAM session.
    const LaunchPlan p = plan_lam(kNodes, {"N"});
    ASSERT_TRUE(p.ok);
    EXPECT_EQ(p.placements.size(), 5u);
    EXPECT_EQ(p.placements[4], "node4");
}

TEST(LamPlan, NodeRangeSpec) {
    // "n0-2,4" starts processes on nodes 0, 1, 2 and 4 (the paper's
    // own example).
    const LaunchPlan p = plan_lam(kNodes, {"n0-2,4"});
    ASSERT_TRUE(p.ok);
    EXPECT_EQ(p.placements,
              (std::vector<std::string>{"node0", "node1", "node2", "node4"}));
}

TEST(LamPlan, ProcessorSpecC) {
    // "C" starts one process per processor.
    const LaunchPlan p = plan_lam(kNodes, {"C"});
    ASSERT_TRUE(p.ok);
    EXPECT_EQ(p.placements.size(), 8u);  // 2+2+1+1+2 CPUs
    EXPECT_EQ(p.placements[0], "node0");
    EXPECT_EQ(p.placements[1], "node0");
    EXPECT_EQ(p.placements[7], "node4");
}

TEST(LamPlan, ProcessorRangeSpec) {
    const LaunchPlan p = plan_lam(kNodes, {"c0,3-4"});
    ASSERT_TRUE(p.ok);
    EXPECT_EQ(p.placements, (std::vector<std::string>{"node0", "node1", "node2"}));
}

TEST(LamPlan, MixedNodeAndProcessorSpecs) {
    // "It is also possible for the user to give a mixture of node and
    // processor specifications."
    const LaunchPlan p = plan_lam(kNodes, {"n0", "c2-3"});
    ASSERT_TRUE(p.ok);
    EXPECT_EQ(p.placements, (std::vector<std::string>{"node0", "node1", "node1"}));
}

TEST(LamPlan, NpOversubscriptionWraps) {
    const LaunchPlan p = plan_lam({{"solo", 2}}, {"-np", "5"});
    ASSERT_TRUE(p.ok);
    EXPECT_EQ(p.placements.size(), 5u);
}

TEST(LamPlan, Errors) {
    EXPECT_FALSE(plan_lam(kNodes, {"-np"}).ok);
    EXPECT_FALSE(plan_lam(kNodes, {"-np", "zero"}).ok);
    EXPECT_FALSE(plan_lam(kNodes, {"-np", "0"}).ok);
    EXPECT_FALSE(plan_lam(kNodes, {"n0-9"}).ok);   // out of range
    EXPECT_FALSE(plan_lam(kNodes, {"c99"}).ok);
    EXPECT_FALSE(plan_lam(kNodes, {"n2-1"}).ok);   // inverted range
    EXPECT_FALSE(plan_lam(kNodes, {"--weird"}).ok);
    EXPECT_FALSE(plan_lam(kNodes, {}).ok);          // nothing requested
    EXPECT_FALSE(plan_lam({}, {"-np", "2"}).ok);    // no booted nodes
}

// MPICH placement (-np / -m / -wdir; the paper's non-shared-filesystem
// additions, section 4.1.1).

TEST(MpichPlan, RoundRobinOverMachinefileCpus) {
    const auto machine = parse_machinefile("hostA:2\nhostB:1\n");
    const LaunchPlan p = plan_mpich(machine, {"-np", "5"});
    ASSERT_TRUE(p.ok);
    EXPECT_EQ(p.placements, (std::vector<std::string>{"hostA", "hostA", "hostB",
                                                      "hostA", "hostA"}));
}

TEST(MpichPlan, InlineMachinefileArgument) {
    const LaunchPlan p = plan_mpich({}, {"-np", "2", "-m", "only:2\n"});
    ASSERT_TRUE(p.ok);
    EXPECT_EQ(p.placements, (std::vector<std::string>{"only", "only"}));
}

TEST(MpichPlan, WdirRecorded) {
    const LaunchPlan p =
        plan_mpich({{"h", 1}}, {"-np", "1", "-wdir", "/scratch/run1"});
    ASSERT_TRUE(p.ok);
    EXPECT_EQ(p.wdir, "/scratch/run1");
}

TEST(MpichPlan, Errors) {
    EXPECT_FALSE(plan_mpich({{"h", 1}}, {}).ok);              // no -np
    EXPECT_FALSE(plan_mpich({{"h", 1}}, {"-np"}).ok);
    EXPECT_FALSE(plan_mpich({}, {"-np", "2"}).ok);            // no machines
    EXPECT_FALSE(plan_mpich({{"h", 1}}, {"-np", "1", "-x"}).ok);
}

TEST(Launch, InvalidPlanThrows) {
    instr::Registry reg;
    World world(reg, {});
    LaunchPlan bad;
    bad.ok = false;
    EXPECT_THROW(launch(world, "nothing", {}, bad), std::invalid_argument);
}

TEST(Launch, AssignsNodesPerPlan) {
    instr::Registry reg;
    World world(reg, {});
    world.register_program("prog", [](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        r.MPI_Finalize();
    });
    const LaunchPlan p = plan_lam(kNodes, {"n0-2,4"});
    const std::vector<int> globals = launch(world, "prog", {}, p);
    world.join_all();
    ASSERT_EQ(globals.size(), 4u);
    EXPECT_EQ(world.proc(globals[0]).node, "node0");
    EXPECT_EQ(world.proc(globals[3]).node, "node4");
}

}  // namespace
}  // namespace m2p::simmpi
