// Table-1 RMA counter matrix: {Put, Get, Accumulate} x {fence, PSCW,
// lock-shared, lock-exclusive} x {2, 5, 16, 64, 256} ranks x {Lam,
// Mpich},
// asserting the per-window op/byte counters against hand-derived
// counts.  Lam runs every transfer on the direct-apply path; Mpich
// routes PSCW transfers through the staged queue -- the totals must be
// bit-identical either way (the epoch-batched flush contract).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <tuple>
#include <vector>

#include "simmpi/launcher.hpp"
#include "simmpi/rank.hpp"
#include "simmpi/world.hpp"

namespace m2p::simmpi {
namespace {

enum class SyncMode { Fence, Pscw, LockShared, LockExcl };

const char* mode_name(SyncMode m) {
    switch (m) {
        case SyncMode::Fence: return "Fence";
        case SyncMode::Pscw: return "Pscw";
        case SyncMode::LockShared: return "LockShared";
        case SyncMode::LockExcl: return "LockExcl";
    }
    return "?";
}

/// Lock-mode iterations per rank (kept small: 16-rank cases still run
/// 16 * kIters serialized critical sections).
constexpr int kIters = 4;

class RmaMatrixTest : public ::testing::TestWithParam<std::tuple<Flavor, int, SyncMode>> {
protected:
    /// Runs @p fn on @p n ranks and returns the final Table-1 snapshot
    /// of the window the program published via @p win_out.
    RmaCounterSnapshot run(int n, std::function<void(Rank&, std::atomic<Win>&)> fn) {
        instr::Registry reg;
        World::Config cfg;
        cfg.flavor = std::get<0>(GetParam());
        World world(reg, cfg);
        std::atomic<Win> win_out{MPI_WIN_NULL};
        world.register_program("prog", [&](Rank& r, const std::vector<std::string>&) {
            fn(r, win_out);
        });
        LaunchPlan plan;
        for (int i = 0; i < n; ++i) plan.placements.push_back("node0");
        launch(world, "prog", {}, plan);
        world.join_all();
        EXPECT_NE(win_out.load(), MPI_WIN_NULL);
        return world.win_rma_counters(win_out.load());
    }
};

TEST_P(RmaMatrixTest, CountersMatchHandDerived) {
    const auto [flavor, n, mode] = GetParam();
    if (mode == SyncMode::Pscw && n < 2) GTEST_SKIP();

    RmaCounterSnapshot snap;
    switch (mode) {
        case SyncMode::Fence: {
            // Every rank: 3 Puts (2 ints), 2 Gets (2 ints), 1 Acc
            // (2 ints) to its ring neighbor between two fences.
            snap = run(n, [n](Rank& r, std::atomic<Win>& win_out) {
                r.MPI_Init();
                const Comm w = r.MPI_COMM_WORLD();
                int me = 0;
                r.MPI_Comm_rank(w, &me);
                std::vector<std::int32_t> mem(8, 0);
                Win win = MPI_WIN_NULL;
                ASSERT_EQ(r.MPI_Win_create(mem.data(), 32, 4, MPI_INFO_NULL, w, &win),
                          MPI_SUCCESS);
                if (me == 0) win_out = win;
                ASSERT_EQ(r.MPI_Win_fence(0, win), MPI_SUCCESS);
                const int t = (me + 1) % n;
                const std::int32_t p1[2] = {me * 100 + 1, me * 100 + 2};
                const std::int32_t p2[2] = {me * 100 + 3, me * 100 + 4};
                const std::int32_t p3[2] = {me * 100 + 5, me * 100 + 6};
                const std::int32_t ac[2] = {me + 1, me + 2};
                std::int32_t got[4] = {0, 0, 0, 0};
                ASSERT_EQ(r.MPI_Put(p1, 2, MPI_INT, t, 0, 2, MPI_INT, win), MPI_SUCCESS);
                ASSERT_EQ(r.MPI_Put(p2, 2, MPI_INT, t, 2, 2, MPI_INT, win), MPI_SUCCESS);
                ASSERT_EQ(r.MPI_Put(p3, 2, MPI_INT, t, 4, 2, MPI_INT, win), MPI_SUCCESS);
                ASSERT_EQ(r.MPI_Get(got, 2, MPI_INT, t, 0, 2, MPI_INT, win), MPI_SUCCESS);
                ASSERT_EQ(r.MPI_Get(got + 2, 2, MPI_INT, t, 2, 2, MPI_INT, win),
                          MPI_SUCCESS);
                ASSERT_EQ(r.MPI_Accumulate(ac, 2, MPI_INT, t, 6, 2, MPI_INT, MPI_SUM, win),
                          MPI_SUCCESS);
                ASSERT_EQ(r.MPI_Win_fence(0, win), MPI_SUCCESS);
                const int prev = (me - 1 + n) % n;
                EXPECT_EQ(mem[0], prev * 100 + 1);
                EXPECT_EQ(mem[5], prev * 100 + 6);
                EXPECT_EQ(mem[6], prev + 1);
                EXPECT_EQ(mem[7], prev + 2);
                ASSERT_EQ(r.MPI_Win_free(&win), MPI_SUCCESS);
                r.MPI_Finalize();
            });
            const std::int64_t N = n;
            EXPECT_EQ(snap.put_ops, 3 * N);
            EXPECT_EQ(snap.put_bytes, 24 * N);
            EXPECT_EQ(snap.get_ops, 2 * N);
            EXPECT_EQ(snap.get_bytes, 16 * N);
            EXPECT_EQ(snap.acc_ops, N);
            EXPECT_EQ(snap.acc_bytes, 8 * N);
            // Per rank: Win_create + 2 fences + Win_free.
            EXPECT_EQ(snap.sync_ops, 4 * N);
            EXPECT_DOUBLE_EQ(snap.pt_sync_wait, 0.0);
            break;
        }
        case SyncMode::Pscw: {
            // Rank 0 exposes (post/wait); every other rank start/
            // 2 Puts / 1 Get / 1 Acc / complete against it.
            snap = run(n, [n](Rank& r, std::atomic<Win>& win_out) {
                r.MPI_Init();
                const Comm w = r.MPI_COMM_WORLD();
                int me = 0;
                r.MPI_Comm_rank(w, &me);
                std::vector<std::int32_t> mem(static_cast<std::size_t>(2 * n + 2), 0);
                Win win = MPI_WIN_NULL;
                ASSERT_EQ(r.MPI_Win_create(mem.data(),
                                           static_cast<std::int64_t>(mem.size()) * 4, 4,
                                           MPI_INFO_NULL, w, &win),
                          MPI_SUCCESS);
                if (me == 0) win_out = win;
                Group wg = MPI_GROUP_NULL;
                r.MPI_Comm_group(w, &wg);
                if (me == 0) {
                    std::vector<int> origins;
                    for (int i = 1; i < n; ++i) origins.push_back(i);
                    Group og = MPI_GROUP_NULL;
                    r.MPI_Group_incl(wg, n - 1, origins.data(), &og);
                    ASSERT_EQ(r.MPI_Win_post(og, 0, win), MPI_SUCCESS);
                    ASSERT_EQ(r.MPI_Win_wait(win), MPI_SUCCESS);
                    for (int i = 1; i < n; ++i) {
                        EXPECT_EQ(mem[static_cast<std::size_t>(i)], i + 50);
                        EXPECT_EQ(mem[static_cast<std::size_t>(n + i)], i + 60);
                    }
                    EXPECT_EQ(mem[0], n - 1);  // each origin accumulated 1
                    r.MPI_Group_free(&og);
                } else {
                    const int zero = 0;
                    Group tg = MPI_GROUP_NULL;
                    r.MPI_Group_incl(wg, 1, &zero, &tg);
                    ASSERT_EQ(r.MPI_Win_start(tg, 0, win), MPI_SUCCESS);
                    const std::int32_t v1 = me + 50, v2 = me + 60, one = 1;
                    std::int32_t got = -1;
                    ASSERT_EQ(r.MPI_Put(&v1, 1, MPI_INT, 0, me, 1, MPI_INT, win),
                              MPI_SUCCESS);
                    ASSERT_EQ(r.MPI_Put(&v2, 1, MPI_INT, 0, n + me, 1, MPI_INT, win),
                              MPI_SUCCESS);
                    ASSERT_EQ(r.MPI_Get(&got, 1, MPI_INT, 0, 2 * n + 1, 1, MPI_INT, win),
                              MPI_SUCCESS);
                    ASSERT_EQ(r.MPI_Accumulate(&one, 1, MPI_INT, 0, 0, 1, MPI_INT,
                                               MPI_SUM, win),
                              MPI_SUCCESS);
                    ASSERT_EQ(r.MPI_Win_complete(win), MPI_SUCCESS);
                    EXPECT_EQ(got, 0);  // slot 2n+1 is never written
                    r.MPI_Group_free(&tg);
                }
                r.MPI_Barrier(w);
                ASSERT_EQ(r.MPI_Win_free(&win), MPI_SUCCESS);
                r.MPI_Finalize();
            });
            const std::int64_t O = n - 1;  // origins
            EXPECT_EQ(snap.put_ops, 2 * O);
            EXPECT_EQ(snap.put_bytes, 8 * O);
            EXPECT_EQ(snap.get_ops, O);
            EXPECT_EQ(snap.get_bytes, 4 * O);
            EXPECT_EQ(snap.acc_ops, O);
            EXPECT_EQ(snap.acc_bytes, 4 * O);
            // Rank 0: create + wait + free (post is not in the sync
            // funcset); origins: create + start + complete + free.
            EXPECT_EQ(snap.sync_ops, 3 + 4 * O);
            EXPECT_DOUBLE_EQ(snap.pt_sync_wait, 0.0);
            break;
        }
        case SyncMode::LockShared: {
            // Every rank, kIters times: lock-shared rank 0's window,
            // read two ints, unlock.
            snap = run(n, [n](Rank& r, std::atomic<Win>& win_out) {
                r.MPI_Init();
                const Comm w = r.MPI_COMM_WORLD();
                int me = 0;
                r.MPI_Comm_rank(w, &me);
                std::vector<std::int32_t> mem(static_cast<std::size_t>(n + 2),
                                              me == 0 ? 7 : 0);
                Win win = MPI_WIN_NULL;
                ASSERT_EQ(r.MPI_Win_create(mem.data(),
                                           static_cast<std::int64_t>(mem.size()) * 4, 4,
                                           MPI_INFO_NULL, w, &win),
                          MPI_SUCCESS);
                if (me == 0) win_out = win;
                for (int it = 0; it < kIters; ++it) {
                    ASSERT_EQ(r.MPI_Win_lock(MPI_LOCK_SHARED, 0, 0, win), MPI_SUCCESS);
                    std::int32_t g0 = -1, g1 = -1;
                    ASSERT_EQ(r.MPI_Get(&g0, 1, MPI_INT, 0, 0, 1, MPI_INT, win),
                              MPI_SUCCESS);
                    ASSERT_EQ(r.MPI_Get(&g1, 1, MPI_INT, 0, 1, 1, MPI_INT, win),
                              MPI_SUCCESS);
                    ASSERT_EQ(r.MPI_Win_unlock(0, win), MPI_SUCCESS);
                    EXPECT_EQ(g0, 7);
                    EXPECT_EQ(g1, 7);
                }
                r.MPI_Barrier(w);
                ASSERT_EQ(r.MPI_Win_free(&win), MPI_SUCCESS);
                r.MPI_Finalize();
            });
            const std::int64_t N = n;
            EXPECT_EQ(snap.put_ops, 0);
            EXPECT_EQ(snap.get_ops, 2 * kIters * N);
            EXPECT_EQ(snap.get_bytes, 8 * kIters * N);
            EXPECT_EQ(snap.acc_ops, 0);
            // Per rank: create + kIters * (lock + unlock) + free.
            EXPECT_EQ(snap.sync_ops, (2 + 2 * kIters) * N);
            break;
        }
        case SyncMode::LockExcl: {
            // Every rank, kIters times: lock-exclusive rank 0's
            // window, one Put and one Accumulate, unlock.
            snap = run(n, [n](Rank& r, std::atomic<Win>& win_out) {
                r.MPI_Init();
                const Comm w = r.MPI_COMM_WORLD();
                int me = 0;
                r.MPI_Comm_rank(w, &me);
                std::vector<std::int32_t> mem(static_cast<std::size_t>(n + 2), 0);
                Win win = MPI_WIN_NULL;
                ASSERT_EQ(r.MPI_Win_create(mem.data(),
                                           static_cast<std::int64_t>(mem.size()) * 4, 4,
                                           MPI_INFO_NULL, w, &win),
                          MPI_SUCCESS);
                if (me == 0) win_out = win;
                for (int it = 0; it < kIters; ++it) {
                    ASSERT_EQ(r.MPI_Win_lock(MPI_LOCK_EXCLUSIVE, 0, 0, win),
                              MPI_SUCCESS);
                    const std::int32_t v = me + 100, one = 1;
                    ASSERT_EQ(r.MPI_Put(&v, 1, MPI_INT, 0, me, 1, MPI_INT, win),
                              MPI_SUCCESS);
                    ASSERT_EQ(r.MPI_Accumulate(&one, 1, MPI_INT, 0, n, 1, MPI_INT,
                                               MPI_SUM, win),
                              MPI_SUCCESS);
                    ASSERT_EQ(r.MPI_Win_unlock(0, win), MPI_SUCCESS);
                }
                r.MPI_Barrier(w);
                if (me == 0) {
                    for (int i = 0; i < n; ++i)
                        EXPECT_EQ(mem[static_cast<std::size_t>(i)], i + 100);
                    EXPECT_EQ(mem[static_cast<std::size_t>(n)], kIters * n);
                }
                ASSERT_EQ(r.MPI_Win_free(&win), MPI_SUCCESS);
                r.MPI_Finalize();
            });
            const std::int64_t N = n;
            EXPECT_EQ(snap.put_ops, kIters * N);
            EXPECT_EQ(snap.put_bytes, 4 * kIters * N);
            EXPECT_EQ(snap.get_ops, 0);
            EXPECT_EQ(snap.acc_ops, kIters * N);
            EXPECT_EQ(snap.acc_bytes, 4 * kIters * N);
            EXPECT_EQ(snap.sync_ops, (2 + 2 * kIters) * N);
            break;
        }
    }
    // Derived totals are computed from the base counters at snapshot
    // time -- always internally consistent.
    EXPECT_EQ(snap.rma_ops, snap.put_ops + snap.get_ops + snap.acc_ops);
    EXPECT_EQ(snap.rma_bytes, snap.put_bytes + snap.get_bytes + snap.acc_bytes);
    EXPECT_DOUBLE_EQ(snap.sync_wait, snap.at_sync_wait + snap.pt_sync_wait);
    EXPECT_GE(snap.at_sync_wait, 0.0);
    EXPECT_GE(snap.pt_sync_wait, 0.0);
}

std::string case_name(const ::testing::TestParamInfo<RmaMatrixTest::ParamType>& info) {
    const auto [flavor, n, mode] = info.param;
    return std::string(flavor == Flavor::Lam ? "Lam" : "Mpich") + "_n" +
           std::to_string(n) + "_" + mode_name(mode);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, RmaMatrixTest,
    ::testing::Combine(::testing::Values(Flavor::Lam, Flavor::Mpich),
                       ::testing::Values(2, 5, 16, 64, 256),
                       ::testing::Values(SyncMode::Fence, SyncMode::Pscw,
                                         SyncMode::LockShared, SyncMode::LockExcl)),
    case_name);

}  // namespace
}  // namespace m2p::simmpi
