// MDL compilation/evaluation semantics, independent of the tool:
// counters, timers, constraints, $arg access, runtime-service calls,
// nesting, gates, and uninstall.
#include <gtest/gtest.h>

#include <thread>

#include "instr/registry.hpp"
#include "mdl/ast.hpp"
#include "mdl/eval.hpp"
#include "util/clock.hpp"

namespace m2p::mdl {
namespace {

class FakeServices : public Services {
public:
    std::int64_t type_size(std::int64_t dt) const override { return dt * 4; }
    std::int64_t window_unique_id(std::int64_t h) const override { return h + 100; }
    std::int64_t comm_unique_id(std::int64_t h) const override { return h; }
};

struct EvalFixture {
    instr::Registry reg;
    instr::FuncId fa, fb;
    std::shared_ptr<FakeServices> services = std::make_shared<FakeServices>();
    MdlFile file;
    std::vector<std::pair<double, double>> sunk;  // (now, delta)

    EvalFixture() {
        fa = reg.register_function("fa", "m", 0);
        fb = reg.register_function("fb", "m", 0);
    }

    FuncSetResolver resolver() {
        return [this](const std::string& set) -> std::vector<instr::FuncId> {
            if (set == "set_a") return {fa};
            if (set == "set_b") return {fb};
            if (set == "set_ab") return {fa, fb};
            return {};
        };
    }

    MetricSink sink() {
        return [this](double now, double delta) { sunk.emplace_back(now, delta); };
    }

    double total() const {
        double t = 0;
        for (const auto& [n, d] : sunk) t += d;
        return t;
    }
};

TEST(MdlEval, CounterIncrementFeedsSink) {
    EvalFixture fx;
    fx.file = parse(R"(
metric m { name "m"; base is counter {
  foreach func in set_a { append preinsn func.entry constrained (* m++; *) } } }
)");
    CompiledMetric cm = compile_metric(fx.reg, fx.file.metrics[0], {}, fx.services,
                                       fx.resolver(), fx.sink());
    for (int i = 0; i < 5; ++i) instr::FunctionGuard g(fx.reg, fx.fa);
    EXPECT_DOUBLE_EQ(fx.total(), 5.0);
    uninstall(fx.reg, cm);
    { instr::FunctionGuard g(fx.reg, fx.fa); }
    EXPECT_DOUBLE_EQ(fx.total(), 5.0);  // removed: no more counting
}

TEST(MdlEval, ByteArithmeticWithTypeSizeAndArgs) {
    EvalFixture fx;
    fx.file = parse(R"(
metric bytes_m { name "bytes_m"; counter bytes; counter count;
  base is counter { foreach func in set_a {
    append preinsn func.entry (* MPI_Type_size($arg[2], &bytes);
                                 count = $arg[1];
                                 bytes_m += bytes * count; *) } } }
)");
    CompiledMetric cm = compile_metric(fx.reg, fx.file.metrics[0], {}, fx.services,
                                       fx.resolver(), fx.sink());
    const std::int64_t args[] = {0, 7, 2};  // count=7, dtype=2 -> size 8
    { instr::FunctionGuard g(fx.reg, fx.fa, args); }
    EXPECT_DOUBLE_EQ(fx.total(), 56.0);
    uninstall(fx.reg, cm);
}

TEST(MdlEval, WallTimerMeasuresElapsed) {
    EvalFixture fx;
    fx.file = parse(R"(
metric t { name "t"; unitstype normalized; base is walltimer {
  foreach func in set_a {
    append preinsn func.entry (* startWallTimer(t); *)
    prepend preinsn func.return (* stopWallTimer(t); *) } } }
)");
    CompiledMetric cm = compile_metric(fx.reg, fx.file.metrics[0], {}, fx.services,
                                       fx.resolver(), fx.sink());
    {
        instr::FunctionGuard g(fx.reg, fx.fa);
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
    EXPECT_GT(fx.total(), 0.025);
    EXPECT_LT(fx.total(), 0.2);
    uninstall(fx.reg, cm);
}

TEST(MdlEval, NestedTimerAccruesOnce) {
    // fa calls fb; both are in the timed set: the timer must not
    // double count (Paradyn timers nest).
    EvalFixture fx;
    fx.file = parse(R"(
metric t { name "t"; base is walltimer {
  foreach func in set_ab {
    append preinsn func.entry (* startWallTimer(t); *)
    prepend preinsn func.return (* stopWallTimer(t); *) } } }
)");
    CompiledMetric cm = compile_metric(fx.reg, fx.file.metrics[0], {}, fx.services,
                                       fx.resolver(), fx.sink());
    {
        instr::FunctionGuard outer(fx.reg, fx.fa);
        {
            instr::FunctionGuard inner(fx.reg, fx.fb);
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_GT(fx.total(), 0.035);
    EXPECT_LT(fx.total(), 0.08);  // ~40ms once, not 60ms
    ASSERT_EQ(fx.sunk.size(), 1u);
    uninstall(fx.reg, cm);
}

TEST(MdlEval, ProcTimerMeasuresCpuNotSleep) {
    EvalFixture fx;
    fx.file = parse(R"(
metric t { name "t"; base is proctimer {
  foreach func in set_a {
    append preinsn func.entry (* startProcTimer(t); *)
    prepend preinsn func.return (* stopProcTimer(t); *) } } }
)");
    CompiledMetric cm = compile_metric(fx.reg, fx.file.metrics[0], {}, fx.services,
                                       fx.resolver(), fx.sink());
    {
        instr::FunctionGuard g(fx.reg, fx.fa);
        std::this_thread::sleep_for(std::chrono::milliseconds(40));  // no CPU
        util::burn_thread_cpu(0.02);
    }
    EXPECT_GT(fx.total(), 0.015);
    EXPECT_LT(fx.total(), 0.04);  // sleep excluded
    uninstall(fx.reg, cm);
}

TEST(MdlEval, ConstraintGatesConstrainedCode) {
    EvalFixture fx;
    fx.file = parse(R"(
constraint win_c /SyncObject/Window is counter {
  foreach func in set_a {
    prepend preinsn func.entry
      (* if (DYNINSTWindow_FindUniqueId($arg[0]) == $constraint[0]) win_c = 1; *)
    append preinsn func.return (* win_c = 0; *)
  }
}
metric ops { name "ops"; constraint win_c; base is counter {
  foreach func in set_a { append preinsn func.entry constrained (* ops++; *) } } }
)");
    // Focus on window uid 103 => handle 3 matches (FakeServices: h+100).
    ConstraintBinding b{fx.file.find_constraint("win_c"), {103}, {}};
    CompiledMetric cm = compile_metric(fx.reg, fx.file.metrics[0], {b}, fx.services,
                                       fx.resolver(), fx.sink());
    const std::int64_t match[] = {3};
    const std::int64_t other[] = {4};
    { instr::FunctionGuard g(fx.reg, fx.fa, match); }
    { instr::FunctionGuard g(fx.reg, fx.fa, other); }
    { instr::FunctionGuard g(fx.reg, fx.fa, match); }
    EXPECT_DOUBLE_EQ(fx.total(), 2.0);
    uninstall(fx.reg, cm);
}

TEST(MdlEval, ConstraintFlagsNestAcrossCalls) {
    // Module-style constraint on fa; metric counts inside fb.  A
    // nested fa (fa -> fa -> fb) must keep the flag set until the
    // outermost return.
    EvalFixture fx;
    fx.file = parse(R"(
constraint mod_c /Code is counter {
  foreach func in focus_module {
    prepend preinsn func.entry (* mod_c = 1; *)
    append preinsn func.return (* mod_c = 0; *)
  }
}
metric ops { name "ops"; constraint mod_c; base is counter {
  foreach func in set_b { append preinsn func.entry constrained (* ops++; *) } } }
)");
    ConstraintBinding b{fx.file.find_constraint("mod_c"), {}, {{"focus_module", {fx.fa}}}};
    CompiledMetric cm = compile_metric(fx.reg, fx.file.metrics[0], {b}, fx.services,
                                       fx.resolver(), fx.sink());
    {
        instr::FunctionGuard g1(fx.reg, fx.fa);
        {
            instr::FunctionGuard g2(fx.reg, fx.fa);  // nested
        }
        instr::FunctionGuard g3(fx.reg, fx.fb);  // still inside fa: counted
    }
    { instr::FunctionGuard g(fx.reg, fx.fb); }  // outside fa: not counted
    EXPECT_DOUBLE_EQ(fx.total(), 1.0);
    uninstall(fx.reg, cm);
}

TEST(MdlEval, MultipleConstraintsAllMustHold) {
    EvalFixture fx;
    fx.file = parse(R"(
constraint c1 /Code is counter {
  foreach func in focus_procedure {
    prepend preinsn func.entry (* c1 = 1; *)
    append preinsn func.return (* c1 = 0; *) } }
metric ops { name "ops"; constraint c1; base is counter {
  foreach func in set_b { append preinsn func.entry constrained (* ops++; *) } } }
)");
    // Bind the same constraint twice to different functions: fb only
    // counts when inside BOTH fa and fb (i.e., never for a bare fb).
    ConstraintBinding b1{fx.file.find_constraint("c1"), {}, {{"focus_procedure", {fx.fa}}}};
    ConstraintBinding b2{fx.file.find_constraint("c1"), {}, {{"focus_procedure", {fx.fb}}}};
    CompiledMetric cm = compile_metric(fx.reg, fx.file.metrics[0], {b1, b2},
                                       fx.services, fx.resolver(), fx.sink());
    { instr::FunctionGuard g(fx.reg, fx.fb); }  // not inside fa
    EXPECT_DOUBLE_EQ(fx.total(), 0.0);
    {
        instr::FunctionGuard g1(fx.reg, fx.fa);
        instr::FunctionGuard g2(fx.reg, fx.fb);
    }
    EXPECT_DOUBLE_EQ(fx.total(), 1.0);
    uninstall(fx.reg, cm);
}

TEST(MdlEval, EventGateFiltersByRank) {
    EvalFixture fx;
    fx.file = parse(R"(
metric ops { name "ops"; base is counter {
  foreach func in set_a { append preinsn func.entry (* ops++; *) } } }
)");
    EventGate gate = [](const instr::CallContext& c) { return c.rank == 2; };
    CompiledMetric cm = compile_metric(fx.reg, fx.file.metrics[0], {}, fx.services,
                                       fx.resolver(), fx.sink(), gate);
    instr::set_current_rank(1);
    { instr::FunctionGuard g(fx.reg, fx.fa); }
    instr::set_current_rank(2);
    { instr::FunctionGuard g(fx.reg, fx.fa); }
    instr::set_current_rank(-1);
    EXPECT_DOUBLE_EQ(fx.total(), 1.0);
    uninstall(fx.reg, cm);
}

TEST(MdlEval, UnknownCallRejectedAtCompileTime) {
    EvalFixture fx;
    fx.file = parse(R"(
metric m { name "m"; base is counter {
  foreach func in set_a { append preinsn func.entry (* frobnicate($arg[0]); *) } } }
)");
    EXPECT_THROW(compile_metric(fx.reg, fx.file.metrics[0], {}, fx.services,
                                fx.resolver(), fx.sink()),
                 CompileError);
    // Nothing was inserted.
    EXPECT_EQ(fx.reg.snippet_count(fx.fa, instr::Where::Entry), 0u);
}

TEST(MdlEval, ScratchVarsArePerThread) {
    EvalFixture fx;
    fx.file = parse(R"(
metric m { name "m"; counter bytes; base is counter {
  foreach func in set_a {
    append preinsn func.entry (* bytes = $arg[0]; m += bytes; *) } } }
)");
    CompiledMetric cm = compile_metric(fx.reg, fx.file.metrics[0], {}, fx.services,
                                       fx.resolver(), fx.sink());
    std::thread t1([&] {
        for (int i = 0; i < 1000; ++i) {
            const std::int64_t a[] = {1};
            instr::FunctionGuard g(fx.reg, fx.fa, a);
        }
    });
    std::thread t2([&] {
        for (int i = 0; i < 1000; ++i) {
            const std::int64_t a[] = {2};
            instr::FunctionGuard g(fx.reg, fx.fa, a);
        }
    });
    t1.join();
    t2.join();
    EXPECT_DOUBLE_EQ(fx.total(), 1000.0 + 2000.0);
    uninstall(fx.reg, cm);
}

TEST(MdlEval, OutOfRangeArgIsZeroNotCrash) {
    EvalFixture fx;
    fx.file = parse(R"(
metric m { name "m"; base is counter {
  foreach func in set_a { append preinsn func.entry (* m += $arg[9]; *) } } }
)");
    CompiledMetric cm = compile_metric(fx.reg, fx.file.metrics[0], {}, fx.services,
                                       fx.resolver(), fx.sink());
    { instr::FunctionGuard g(fx.reg, fx.fa); }
    EXPECT_DOUBLE_EQ(fx.total(), 0.0);
    uninstall(fx.reg, cm);
}

}  // namespace
}  // namespace m2p::mdl
