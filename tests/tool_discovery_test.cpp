// Resource discovery: the tool's window / communicator / process /
// naming instrumentation (paper sections 4.2.1-4.2.3).
#include <gtest/gtest.h>

#include "core/tool.hpp"
#include "simmpi/launcher.hpp"
#include "simmpi/rank.hpp"

namespace m2p::core {
namespace {

using simmpi::Comm;
using simmpi::Flavor;
using simmpi::Rank;
using simmpi::Win;
using simmpi::MPI_COMM_NULL;
using simmpi::MPI_INFO_NULL;
using simmpi::MPI_INT;
using simmpi::MPI_WIN_NULL;

struct ToolFixture {
    instr::Registry reg;
    simmpi::World world;
    PerfTool tool;

    explicit ToolFixture(Flavor f = Flavor::Lam,
                         SpawnMethod sm = SpawnMethod::Intercept, bool mpir = false)
        : world(reg,
                [&] {
                    simmpi::World::Config c;
                    c.flavor = f;
                    c.mpir_enabled = mpir;
                    return c;
                }()),
          tool(world, [&] {
              PerfTool::Options o;
              o.spawn_method = sm;
              return o;
          }()) {}

    void run(int n, std::function<void(Rank&)> fn) {
        world.register_program("prog",
                               [fn](Rank& r, const std::vector<std::string>&) { fn(r); });
        run_app_async(tool, "prog", {}, n);
        world.join_all();
        tool.flush();
    }
};

TEST(Discovery, ProcessesAndMachinesAppearOnLaunch) {
    ToolFixture fx;
    fx.run(4, [](Rank& r) {
        r.MPI_Init();
        r.MPI_Finalize();
    });
    EXPECT_TRUE(fx.tool.hierarchy().exists("/Process/p0"));
    EXPECT_TRUE(fx.tool.hierarchy().exists("/Process/p3"));
    EXPECT_TRUE(fx.tool.hierarchy().exists("/Machine/node0/p0"));
    EXPECT_TRUE(fx.tool.hierarchy().exists("/Machine/node1/p2"));
    EXPECT_EQ(fx.tool.daemons().size(), 2u);  // one per node
}

TEST(Discovery, CodeResourcesReflectSymbolVisibilityPerFlavor) {
    // LAM shows MPI_* strong symbols; MPICH's weak-symbol build shows
    // PMPI_* (paper 4.1.1).
    {
        ToolFixture lam(Flavor::Lam);
        lam.tool.flush();
        EXPECT_TRUE(lam.tool.hierarchy().exists("/Code/libmpi/MPI_Send"));
        EXPECT_FALSE(lam.tool.hierarchy().exists("/Code/libmpi/PMPI_Send"));
    }
    {
        ToolFixture mpich(Flavor::Mpich);
        mpich.tool.flush();
        EXPECT_TRUE(mpich.tool.hierarchy().exists("/Code/libmpi/PMPI_Send"));
        EXPECT_FALSE(mpich.tool.hierarchy().exists("/Code/libmpi/MPI_Send"));
        EXPECT_TRUE(mpich.tool.hierarchy().exists("/Code/libc/read"));
    }
}

TEST(Discovery, WindowsGetUniqueNMIdsAcrossReuse) {
    ToolFixture fx;
    fx.run(2, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        std::vector<char> mem(16, 0);
        for (int i = 0; i < 3; ++i) {
            Win win = MPI_WIN_NULL;
            r.MPI_Win_create(mem.data(), 16, 1, MPI_INFO_NULL, w, &win);
            r.MPI_Win_free(&win);
        }
        r.MPI_Finalize();
    });
    // The implementation reused id N; the tool minted N-0, N-1, N-2.
    auto wins = fx.tool.hierarchy().children("/SyncObject/Window", true);
    ASSERT_EQ(wins.size(), 3u);
    EXPECT_NE(wins[0], wins[1]);
    const std::string n = ResourceHierarchy::leaf(wins[0]);
    EXPECT_EQ(n.substr(0, n.find('-')),
              ResourceHierarchy::leaf(wins[1]).substr(0, n.find('-')));
    // All are freed, so all retired and excluded from PC refinement.
    EXPECT_TRUE(fx.tool.hierarchy().children("/SyncObject/Window", false).empty());
    for (const auto& p : wins) EXPECT_TRUE(fx.tool.hierarchy().get(p).retired);
}

TEST(Discovery, WindowNamingUpdatesDisplay) {
    ToolFixture fx;
    fx.run(2, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        std::vector<char> mem(16, 0);
        Win win = MPI_WIN_NULL;
        r.MPI_Win_create(mem.data(), 16, 1, MPI_INFO_NULL, w, &win);
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        if (me == 0) r.MPI_Win_set_name(win, "MyWindow");
        r.MPI_Barrier(w);
        r.MPI_Win_free(&win);
        r.MPI_Finalize();
    });
    const auto wins = fx.tool.hierarchy().children("/SyncObject/Window", true);
    ASSERT_EQ(wins.size(), 1u);
    EXPECT_EQ(fx.tool.hierarchy().get(wins[0]).display, "MyWindow");
}

TEST(Discovery, LamWindowNameAppearsUnderMessageToo) {
    // LAM stores window names in the window's shadow communicator, so
    // the name shows up under /SyncObject/Message as well (Fig 23).
    ToolFixture fx(Flavor::Lam);
    fx.run(2, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        std::vector<char> mem(16, 0);
        Win win = MPI_WIN_NULL;
        r.MPI_Win_create(mem.data(), 16, 1, MPI_INFO_NULL, w, &win);
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        if (me == 0) r.MPI_Win_set_name(win, "ParentChildWindow");
        r.MPI_Barrier(w);
        r.MPI_Win_free(&win);
        r.MPI_Finalize();
    });
    bool found = false;
    for (const auto& c : fx.tool.hierarchy().children("/SyncObject/Message", true))
        found = found || fx.tool.hierarchy().get(c).display == "ParentChildWindow";
    EXPECT_TRUE(found);
}

TEST(Discovery, CommunicatorsAndTagsFromMessageTraffic) {
    ToolFixture fx;
    fx.run(2, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        int v = 1;
        if (me == 0) {
            r.MPI_Send(&v, 1, MPI_INT, 1, 5, w);
            r.MPI_Send(&v, 1, MPI_INT, 1, 6, w);
        } else {
            r.MPI_Recv(&v, 1, MPI_INT, 0, 5, w, nullptr);
            r.MPI_Recv(&v, 1, MPI_INT, 0, 6, w, nullptr);
        }
        r.MPI_Comm_set_name(w, "MainComm");
        r.MPI_Finalize();
    });
    const auto comms = fx.tool.hierarchy().children("/SyncObject/Message", true);
    ASSERT_EQ(comms.size(), 1u);
    EXPECT_EQ(fx.tool.hierarchy().get(comms[0]).display, "MainComm");
    const auto tags = fx.tool.hierarchy().children(comms[0], true);
    EXPECT_EQ(tags.size(), 2u);
}

TEST(Discovery, InternalReservedTagsInvisible) {
    // The MPICH barrier's internal PMPI_Sendrecv traffic uses reserved
    // tags; they must not pollute the SyncObject hierarchy.
    ToolFixture fx(Flavor::Mpich);
    fx.run(4, [](Rank& r) {
        r.MPI_Init();
        for (int i = 0; i < 5; ++i) r.MPI_Barrier(r.MPI_COMM_WORLD());
        r.MPI_Finalize();
    });
    for (const auto& c : fx.tool.hierarchy().children("/SyncObject/Message", true))
        EXPECT_TRUE(fx.tool.hierarchy().children(c, true).empty())
            << "no user tags were used";
}

TEST(SpawnSupport, InterceptDiscoversChildrenAndCountsOverhead) {
    ToolFixture fx(Flavor::Lam, SpawnMethod::Intercept);
    fx.world.register_program("child", [](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        r.MPI_Finalize();
    });
    fx.run(1, [](Rank& r) {
        r.MPI_Init();
        Comm inter = MPI_COMM_NULL;
        std::vector<int> errcodes;
        r.MPI_Comm_spawn("child", {}, 3, MPI_INFO_NULL, 0, r.MPI_COMM_WORLD(), &inter,
                         &errcodes);
        r.MPI_Finalize();
    });
    EXPECT_TRUE(fx.tool.hierarchy().exists("/Process/p1"));
    EXPECT_TRUE(fx.tool.hierarchy().exists("/Process/p3"));
    const SpawnSupportStats& s = fx.tool.spawn_stats();
    EXPECT_EQ(s.spawns_seen, 1);
    EXPECT_EQ(s.daemons_started, 3);  // one daemon per spawned process
    EXPECT_GT(s.intercept_overhead_seconds, 0.0);
}

TEST(SpawnSupport, AttachFailsWithoutMpir) {
    // The attach method needs the MPI Debugging Interface; LAM/MPICH2
    // did not support its dynamic-process parts (paper 4.2.2).
    ToolFixture fx(Flavor::Lam, SpawnMethod::Attach, /*mpir=*/false);
    fx.world.register_program("child", [](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        r.MPI_Finalize();
    });
    fx.run(1, [](Rank& r) {
        r.MPI_Init();
        Comm inter = MPI_COMM_NULL;
        std::vector<int> errcodes;
        r.MPI_Comm_spawn("child", {}, 2, MPI_INFO_NULL, 0, r.MPI_COMM_WORLD(), &inter,
                         &errcodes);
        r.MPI_Finalize();
    });
    EXPECT_FALSE(fx.tool.hierarchy().exists("/Process/p1"));
    EXPECT_GT(fx.tool.spawn_stats().attach_failures, 0);
}

TEST(SpawnSupport, AttachWorksWithMpir) {
    ToolFixture fx(Flavor::Lam, SpawnMethod::Attach, /*mpir=*/true);
    fx.world.register_program("child", [](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        r.MPI_Finalize();
    });
    fx.run(1, [](Rank& r) {
        r.MPI_Init();
        Comm inter = MPI_COMM_NULL;
        std::vector<int> errcodes;
        r.MPI_Comm_spawn("child", {}, 2, MPI_INFO_NULL, 0, r.MPI_COMM_WORLD(), &inter,
                         &errcodes);
        r.MPI_Finalize();
    });
    EXPECT_TRUE(fx.tool.hierarchy().exists("/Process/p1"));
    EXPECT_TRUE(fx.tool.hierarchy().exists("/Process/p2"));
    EXPECT_EQ(fx.tool.spawn_stats().processes_attached, 2);
    // Attach adds no daemon-per-child overhead.
    EXPECT_EQ(fx.tool.spawn_stats().daemons_started, 0);
}

TEST(Focus, RanksForFocusFiltersAxes) {
    ToolFixture fx;
    fx.run(4, [](Rank& r) {
        r.MPI_Init();
        r.MPI_Finalize();
    });
    Focus f;
    EXPECT_EQ(fx.tool.ranks_for_focus(f).size(), 4u);
    f.process = "/Process/p2";
    EXPECT_EQ(fx.tool.ranks_for_focus(f), (std::vector<int>{2}));
    f = Focus{};
    f.machine = "/Machine/node0";
    EXPECT_EQ(fx.tool.ranks_for_focus(f), (std::vector<int>{0, 1}));
}

TEST(Tunables, ComeFromMdlFile) {
    ToolFixture fx;
    EXPECT_DOUBLE_EQ(fx.tool.tunable("PC_SyncThreshold", -1), 0.2);
    EXPECT_DOUBLE_EQ(fx.tool.tunable("Nonexistent", 7.5), 7.5);
}

}  // namespace
}  // namespace m2p::core
