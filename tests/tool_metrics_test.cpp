// Metric-focus instantiation correctness: byte/op counters against
// ground truth, timers, constraints (window / comm / tag / procedure),
// and instrumentation removal.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/metrics.hpp"
#include "core/tool.hpp"
#include "simmpi/launcher.hpp"
#include "simmpi/rank.hpp"
#include "simmpi/sched.hpp"
#include "util/clock.hpp"

namespace m2p::core {
namespace {

using simmpi::Comm;
using simmpi::Flavor;
using simmpi::Rank;
using simmpi::Win;
using simmpi::MPI_BYTE;
using simmpi::MPI_INFO_NULL;
using simmpi::MPI_INT;
using simmpi::MPI_WIN_NULL;

struct Fx {
    instr::Registry reg;
    simmpi::World world;
    PerfTool tool;

    explicit Fx(Flavor f = Flavor::Lam, bool paused = false)
        : world(reg,
                [&] {
                    simmpi::World::Config c;
                    c.flavor = f;
                    c.start_paused = paused;
                    return c;
                }()),
          tool(world, PerfTool::Options{}) {}

    void run(int n, std::function<void(Rank&)> fn) {
        world.register_program("prog",
                               [fn](Rank& r, const std::vector<std::string>&) { fn(r); });
        run_app_async(tool, "prog", {}, n);
        world.join_all();
        tool.flush();
    }
};

TEST(Metrics, UnknownMetricReturnsNull) {
    Fx fx;
    EXPECT_EQ(fx.tool.metrics().request("no_such_metric", Focus{}), nullptr);
}

TEST(Metrics, MsgBytesSentMatchGroundTruth) {
    Fx fx;
    auto pair = fx.tool.metrics().request("msg_bytes_sent", Focus{});
    ASSERT_NE(pair, nullptr);
    constexpr int kMsgs = 200, kBytes = 32;
    fx.run(2, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        std::vector<char> buf(kBytes, 'm');
        if (me == 0)
            for (int i = 0; i < kMsgs; ++i) r.MPI_Send(buf.data(), kBytes, MPI_BYTE, 1, 0, w);
        else
            for (int i = 0; i < kMsgs; ++i)
                r.MPI_Recv(buf.data(), kBytes, MPI_BYTE, 0, 0, w, nullptr);
        r.MPI_Finalize();
    });
    EXPECT_DOUBLE_EQ(pair->total(), kMsgs * kBytes);
    fx.tool.metrics().release(pair);
}

TEST(Metrics, MsgBytesRecvCountSendrecvToo) {
    Fx fx;
    auto pair = fx.tool.metrics().request("msg_bytes_recv", Focus{});
    ASSERT_NE(pair, nullptr);
    fx.run(2, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        int mine = me, theirs = -1;
        simmpi::Status st;
        r.MPI_Sendrecv(&mine, 1, MPI_INT, 1 - me, 0, &theirs, 1, MPI_INT, 1 - me, 0, w,
                       &st);
        r.MPI_Finalize();
    });
    EXPECT_DOUBLE_EQ(pair->total(), 8.0);  // two ranks x one 4-byte recv
    fx.tool.metrics().release(pair);
}

TEST(Metrics, ProcessGateRestrictsToOneRank) {
    // Hold the job paused so the gated pair is installed before any
    // message flows (otherwise rank 1's sends can finish first on a
    // loaded host).
    Fx fx(Flavor::Lam, /*paused=*/true);
    // Count only rank 1's sends.
    fx.world.register_program("prog", [](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0, n = 0;
        r.MPI_Comm_rank(w, &me);
        r.MPI_Comm_size(w, &n);
        char b = 'z';
        if (me == 0) {
            for (int i = 0; i < 2 * (n - 1); ++i)
                r.MPI_Recv(&b, 1, MPI_BYTE, simmpi::MPI_ANY_SOURCE, 0, w, nullptr);
        } else {
            r.MPI_Send(&b, 1, MPI_BYTE, 0, 0, w);
            r.MPI_Send(&b, 1, MPI_BYTE, 0, 0, w);
        }
        r.MPI_Finalize();
    });
    run_app_async(fx.tool, "prog", {}, 3);
    fx.tool.flush();  // /Process/p1 exists once launch reports apply
    Focus f;
    f.process = "/Process/p1";
    auto pair = fx.tool.metrics().request("msgs_sent", f);
    ASSERT_NE(pair, nullptr);
    fx.world.release_start_gate();
    fx.world.join_all();
    fx.tool.flush();
    EXPECT_DOUBLE_EQ(pair->total(), 2.0);
    fx.tool.metrics().release(pair);
}

TEST(Metrics, RmaCountersAndWindowConstraint) {
    Fx fx;
    auto all_puts = fx.tool.metrics().request("rma_put_ops", Focus{});
    auto all_bytes = fx.tool.metrics().request("rma_put_bytes", Focus{});
    ASSERT_NE(all_puts, nullptr);
    ASSERT_NE(all_bytes, nullptr);

    constexpr int kPutsPerWin = 25;
    fx.run(2, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        std::vector<std::int32_t> mem(8, 0);
        // Two windows; puts go to both.
        Win win1 = MPI_WIN_NULL, win2 = MPI_WIN_NULL;
        r.MPI_Win_create(mem.data(), 32, 4, MPI_INFO_NULL, w, &win1);
        r.MPI_Win_create(mem.data(), 32, 4, MPI_INFO_NULL, w, &win2);
        r.MPI_Win_fence(0, win1);
        r.MPI_Win_fence(0, win2);
        if (me == 0) {
            const std::int32_t v[2] = {1, 2};
            for (int i = 0; i < kPutsPerWin; ++i) {
                r.MPI_Put(v, 2, MPI_INT, 1, 0, 2, MPI_INT, win1);
                r.MPI_Put(v, 1, MPI_INT, 1, 0, 1, MPI_INT, win2);
            }
        }
        r.MPI_Win_fence(0, win1);
        r.MPI_Win_fence(0, win2);
        r.MPI_Win_free(&win1);
        r.MPI_Win_free(&win2);
        r.MPI_Finalize();
    });
    EXPECT_DOUBLE_EQ(all_puts->total(), 2 * kPutsPerWin);
    EXPECT_DOUBLE_EQ(all_bytes->total(), kPutsPerWin * (8 + 4));
    fx.tool.metrics().release(all_puts);
    fx.tool.metrics().release(all_bytes);
}

TEST(Metrics, WindowConstraintIsolatesOneWindow) {
    Fx fx;
    std::shared_ptr<MetricFocusPair> win1_puts;
    constexpr int kPuts = 30;
    fx.world.register_program("prog", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        std::vector<std::int32_t> mem(8, 0);
        Win win1 = MPI_WIN_NULL, win2 = MPI_WIN_NULL;
        r.MPI_Win_create(mem.data(), 32, 4, MPI_INFO_NULL, w, &win1);
        r.MPI_Win_create(mem.data(), 32, 4, MPI_INFO_NULL, w, &win2);
        r.MPI_Barrier(w);
        if (me == 0) {
            // Both windows are discovered now; focus on the first.
            fx.tool.flush();
            const auto wins = fx.tool.hierarchy().children("/SyncObject/Window", false);
            Focus f;
            f.syncobj = wins[0];
            win1_puts = fx.tool.metrics().request("rma_put_ops", f);
        }
        r.MPI_Barrier(w);
        r.MPI_Win_fence(0, win1);
        r.MPI_Win_fence(0, win2);
        if (me == 0) {
            const std::int32_t v = 9;
            for (int i = 0; i < kPuts; ++i) {
                r.MPI_Put(&v, 1, MPI_INT, 1, 0, 1, MPI_INT, win1);
                r.MPI_Put(&v, 1, MPI_INT, 1, 0, 1, MPI_INT, win2);
            }
        }
        r.MPI_Win_fence(0, win1);
        r.MPI_Win_fence(0, win2);
        r.MPI_Win_free(&win1);
        r.MPI_Win_free(&win2);
        r.MPI_Finalize();
    });
    run_app_async(fx.tool, "prog", {}, 2);
    fx.world.join_all();
    fx.tool.flush();
    ASSERT_NE(win1_puts, nullptr);
    EXPECT_DOUBLE_EQ(win1_puts->total(), kPuts);  // win2 puts excluded
    fx.tool.metrics().release(win1_puts);
}

TEST(Metrics, SyncWaitTimerSeesBlockingRecv) {
    Fx fx;
    auto pair = fx.tool.metrics().request("sync_wait_inclusive", Focus{});
    ASSERT_NE(pair, nullptr);
    EXPECT_EQ(pair->unitstype(), mdl::UnitsType::Normalized);
    fx.run(2, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        char b = 0;
        if (me == 0) {
            // Make rank 1 wait ~60ms in MPI_Recv.
            simmpi::sched::sleep_for(std::chrono::milliseconds(60));
            r.MPI_Send(&b, 1, MPI_BYTE, 1, 0, w);
        } else {
            r.MPI_Recv(&b, 1, MPI_BYTE, 0, 0, w, nullptr);
        }
        r.MPI_Finalize();
    });
    EXPECT_GT(pair->total(), 0.04);
    EXPECT_LT(pair->total(), 0.5);
    fx.tool.metrics().release(pair);
}

TEST(Metrics, ProcedureConstraintMeasuresInclusiveSyncOfFunction) {
    Fx fx;
    instr::Registry& reg = fx.reg;
    const instr::FuncId inner = reg.register_function(
        "inner_fn", "app", static_cast<std::uint32_t>(instr::Category::AppCode));
    fx.tool.flush();

    std::shared_ptr<MetricFocusPair> pair;
    fx.world.register_program("prog", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        if (me == 0) {
            Focus f;
            f.code = "/Code/app/inner_fn";
            pair = fx.tool.metrics().request("sync_wait_inclusive", f);
        }
        r.MPI_Barrier(w);
        char b = 0;
        if (me == 0) {
            simmpi::sched::sleep_for(std::chrono::milliseconds(50));
            r.MPI_Send(&b, 1, MPI_BYTE, 1, 0, w);   // outside inner_fn
            simmpi::sched::sleep_for(std::chrono::milliseconds(50));
            r.MPI_Send(&b, 1, MPI_BYTE, 1, 1, w);
        } else {
            r.MPI_Recv(&b, 1, MPI_BYTE, 0, 0, w, nullptr);  // outside: ~50ms wait
            {
                instr::FunctionGuard g(reg, inner);
                r.MPI_Recv(&b, 1, MPI_BYTE, 0, 1, w, nullptr);  // inside: ~50ms
            }
        }
        r.MPI_Finalize();
    });
    run_app_async(fx.tool, "prog", {}, 2);
    fx.world.join_all();
    ASSERT_NE(pair, nullptr);
    // Only the receive inside inner_fn counts.
    EXPECT_GT(pair->total(), 0.03);
    EXPECT_LT(pair->total(), 0.085);
    fx.tool.metrics().release(pair);
}

TEST(Metrics, ReleaseRemovesInstrumentation) {
    Fx fx;
    const std::size_t before = fx.reg.snippet_count(fx.reg.find("PMPI_Put"),
                                                    instr::Where::Entry);
    auto pair = fx.tool.metrics().request("rma_put_ops", Focus{});
    ASSERT_NE(pair, nullptr);
    EXPECT_GT(fx.reg.snippet_count(fx.reg.find("PMPI_Put"), instr::Where::Entry),
              before);
    fx.tool.metrics().release(pair);
    EXPECT_EQ(fx.reg.snippet_count(fx.reg.find("PMPI_Put"), instr::Where::Entry),
              before);
    EXPECT_EQ(fx.tool.metrics().active_pairs(), 0u);
}

TEST(Metrics, NativeCpuMetricSeesBusyRank) {
    Fx fx;
    auto pair = fx.tool.metrics().request("cpu", Focus{});
    ASSERT_NE(pair, nullptr);
    fx.run(2, [](Rank& r) {
        r.MPI_Init();
        int me = 0;
        r.MPI_Comm_rank(r.MPI_COMM_WORLD(), &me);
        if (me == 0) util::burn_thread_cpu(0.08);
        r.MPI_Finalize();
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));  // final samples
    EXPECT_GT(pair->total(), 0.05);
    fx.tool.metrics().release(pair);
}

TEST(Metrics, CpuOnCodeFocusDelegatesToCpuInclusive) {
    Fx fx;
    const instr::FuncId hot = fx.reg.register_function(
        "hot_fn", "app", static_cast<std::uint32_t>(instr::Category::AppCode));
    Focus f;
    f.code = "/Code/app/hot_fn";
    auto pair = fx.tool.metrics().request("cpu", f);
    ASSERT_NE(pair, nullptr);
    EXPECT_EQ(pair->metric(), "cpu_inclusive");
    fx.run(1, [&](Rank& r) {
        r.MPI_Init();
        {
            instr::FunctionGuard g(fx.reg, hot);
            util::burn_thread_cpu(0.05);
        }
        util::burn_thread_cpu(0.05);  // outside: not counted
        r.MPI_Finalize();
    });
    EXPECT_GT(pair->total(), 0.03);
    EXPECT_LT(pair->total(), 0.085);
    fx.tool.metrics().release(pair);
}

TEST(Metrics, FocusRequiringDisallowedConstraintReturnsNull) {
    Fx fx;
    Focus f;
    f.syncobj = "/SyncObject/Window/0-0";  // not yet discovered anyway
    EXPECT_EQ(fx.tool.metrics().request("io_wait_inclusive", f), nullptr);
}

}  // namespace
}  // namespace m2p::core
