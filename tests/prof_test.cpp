// gprof-style flat profiler (paper Fig 19's cross-check).
#include <gtest/gtest.h>

#include "core/session.hpp"
#include "pperfmark/pperfmark.hpp"
#include "prof/flat_profiler.hpp"
#include "util/clock.hpp"

namespace m2p::prof {
namespace {

TEST(FlatProfiler, SelfAndInclusiveSeparateParentFromChild) {
    instr::Registry reg;
    const auto app = static_cast<std::uint32_t>(instr::Category::AppCode);
    const instr::FuncId parent = reg.register_function("parent", "app", app);
    const instr::FuncId child = reg.register_function("child", "app", app);
    FlatProfiler prof(reg);
    {
        instr::FunctionGuard g(reg, parent);
        util::burn_thread_cpu(0.02);
        {
            instr::FunctionGuard g2(reg, child);
            util::burn_thread_cpu(0.03);
        }
    }
    const auto rows = prof.report();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].name, "child");  // more self time
    EXPECT_NEAR(rows[0].self_seconds, 0.03, 0.02);
    EXPECT_NEAR(rows[1].self_seconds, 0.02, 0.02);
    EXPECT_EQ(rows[0].calls, 1u);
    EXPECT_GT(rows[0].pct_time, rows[1].pct_time);
}

TEST(FlatProfiler, CallCountsAccumulate) {
    instr::Registry reg;
    const auto app = static_cast<std::uint32_t>(instr::Category::AppCode);
    const instr::FuncId f = reg.register_function("f", "app", app);
    FlatProfiler prof(reg);
    for (int i = 0; i < 37; ++i) instr::FunctionGuard g(reg, f);
    const auto rows = prof.report();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].calls, 37u);
}

TEST(FlatProfiler, HotProcedureLooksLikePaperFig19) {
    // Fig 19: bottleneckProcedure consumes ~100% of the program's
    // time; the irrelevantProcedures take ~0 us/call despite equal
    // call counts.
    core::Session s(simmpi::Flavor::Lam);
    ppm::Params p;
    p.iterations = 60;
    p.waste_unit_seconds = 0.002;
    ppm::register_all(s.world(), p);
    FlatProfiler prof(s.registry());
    s.run(ppm::kHotProcedure, 1, 1);
    const auto rows = prof.report();
    ASSERT_FALSE(rows.empty());
    EXPECT_EQ(rows[0].name, "bottleneckProcedure");
    EXPECT_GT(rows[0].pct_time, 95.0);
    EXPECT_EQ(rows[0].calls, 60u);
    // Every irrelevant procedure was called as often but used ~no time.
    int irrelevants = 0;
    for (const auto& r : rows) {
        if (r.name.rfind("irrelevantProcedure", 0) == 0) {
            ++irrelevants;
            EXPECT_EQ(r.calls, 60u);
            EXPECT_LT(r.us_per_call, 50.0);
        }
    }
    EXPECT_EQ(irrelevants, p.irrelevant_procedures);
    const std::string text = prof.render();
    EXPECT_NE(text.find("us/call"), std::string::npos);
    EXPECT_NE(text.find("bottleneckProcedure"), std::string::npos);
}

TEST(FlatProfiler, RemovesInstrumentationOnDestruction) {
    instr::Registry reg;
    const auto app = static_cast<std::uint32_t>(instr::Category::AppCode);
    const instr::FuncId f = reg.register_function("f", "app", app);
    {
        FlatProfiler prof(reg);
        EXPECT_EQ(reg.snippet_count(f, instr::Where::Entry), 1u);
    }
    EXPECT_EQ(reg.snippet_count(f, instr::Where::Entry), 0u);
}

TEST(FlatProfiler, ModuleScopedProfiling) {
    instr::Registry reg;
    const instr::FuncId inmod = reg.register_function("in", "modA", 0);
    const instr::FuncId outmod = reg.register_function("out", "modB", 0);
    FlatProfiler prof(reg, "modA");
    { instr::FunctionGuard g(reg, inmod); }
    { instr::FunctionGuard g(reg, outmod); }
    const auto rows = prof.report();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].name, "in");
}

}  // namespace
}  // namespace m2p::prof
