// Fault injection and fault-tolerant behavior: every FaultPlan fault
// kind (crash, hang, drop, delay, spawn failure) replayed
// deterministically, survivor error codes checked for consistency,
// errhandler semantics (MPI_ERRORS_RETURN vs MPI_ERRORS_ARE_FATAL),
// the join_all watchdog, and the tool-side degradation acceptance
// scenario (a Performance Consultant run that loses a rank mid-search
// yet reports survivor findings).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "core/session.hpp"
#include "pperfmark/pperfmark.hpp"
#include "simmpi/faults.hpp"
#include "simmpi/launcher.hpp"
#include "simmpi/rank.hpp"
#include "simmpi/sched.hpp"
#include "simmpi/world.hpp"

namespace m2p {
namespace {

using simmpi::CollAlgo;
using simmpi::Comm;
using simmpi::Epitaph;
using simmpi::FaultPlan;
using simmpi::Flavor;
using simmpi::LaunchPlan;
using simmpi::Rank;
using simmpi::World;
using simmpi::MPI_BYTE;
using simmpi::MPI_COMM_NULL;
using simmpi::MPI_ERR_OTHER;
using simmpi::MPI_ERR_PROC_FAILED;
using simmpi::MPI_ERR_RANK;
using simmpi::MPI_ERR_SPAWN;
using simmpi::MPI_ERR_WIN;
using simmpi::MPI_ERRORS_ARE_FATAL;
using simmpi::MPI_INFO_NULL;
using simmpi::MPI_INT;
using simmpi::MPI_LOCK_EXCLUSIVE;
using simmpi::MPI_SUCCESS;
using simmpi::MPI_WIN_NULL;
using simmpi::Win;

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
}

/// Per-rank observations collected from inside the program bodies
/// (rank threads), read back on the test thread after join_all.
struct Observed {
    std::mutex mu;
    std::map<int, int> first_error;     ///< rank -> first non-success rc
    std::map<int, double> elapsed;      ///< rank -> seconds in the probed call
    void error(int me, int rc) {
        std::lock_guard lk(mu);
        first_error.emplace(me, rc);
    }
    void timing(int me, double s) {
        std::lock_guard lk(mu);
        elapsed[me] = s;
    }
};

World::Config faulted_cfg(Flavor f, CollAlgo algo) {
    World::Config cfg;
    cfg.flavor = f;
    cfg.coll_algo = algo;
    // Tight enough that a wrongly-deadlocked test fails fast, loose
    // enough that liveness detection (ms) is clearly what unwedges us.
    cfg.wait_deadline_seconds = 5.0;
    cfg.join_deadline_seconds = 30.0;
    cfg.faults = std::make_shared<FaultPlan>();
    return cfg;
}

void run_ranks(World& world, const std::string& prog, int n) {
    LaunchPlan plan;
    for (int i = 0; i < n; ++i)
        plan.placements.push_back("node" + std::to_string(i % 2));
    launch(world, prog, {}, plan);
    world.join_all();
}

// ---------------------------------------------------------------------------
// Crash in a collective: every survivor sees the same MPI_ERR_PROC_FAILED,
// across both collective algorithms and both flavors.
// ---------------------------------------------------------------------------

void crash_in_collective(Flavor f, CollAlgo algo) {
    instr::Registry reg;
    World::Config cfg = faulted_cfg(f, algo);
    // Rank 1 dies entering its 3rd allreduce (calls: Init, 2 allreduces, boom).
    cfg.faults->kill_at_call(1, 4);
    World world(reg, cfg);
    Observed obs;
    world.register_program("app", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        int me = 0;
        r.MPI_Comm_rank(r.MPI_COMM_WORLD(), &me);
        int rc = MPI_SUCCESS;
        for (int i = 0; i < 200 && rc == MPI_SUCCESS; ++i) {
            int in = me, out = 0;
            rc = r.MPI_Allreduce(&in, &out, 1, MPI_INT, simmpi::MPI_SUM,
                                 r.MPI_COMM_WORLD());
        }
        obs.error(me, rc);
        r.MPI_Finalize();
    });
    run_ranks(world, "app", 4);

    const auto epitaphs = world.epitaphs();
    ASSERT_EQ(epitaphs.size(), 1u);
    EXPECT_EQ(epitaphs[0].global_rank, 1);
    EXPECT_EQ(epitaphs[0].cause, Epitaph::Cause::Killed);
    EXPECT_EQ(epitaphs[0].calls_made, 4u);
    EXPECT_EQ(epitaphs[0].last_call, "MPI_Allreduce");

    // The victim never reports; every survivor reports the same code.
    EXPECT_EQ(obs.first_error.count(1), 0u);
    for (int me : {0, 2, 3}) {
        ASSERT_EQ(obs.first_error.count(me), 1u) << "rank " << me << " hung?";
        EXPECT_EQ(obs.first_error[me], MPI_ERR_PROC_FAILED) << "rank " << me;
    }
    EXPECT_FALSE(world.poisoned());  // MPI_ERRORS_RETURN is the default
}

TEST(Faults, CrashInCollectiveLamFlat) {
    crash_in_collective(Flavor::Lam, CollAlgo::Flat);
}
TEST(Faults, CrashInCollectiveLamTree) {
    crash_in_collective(Flavor::Lam, CollAlgo::Tree);
}
TEST(Faults, CrashInCollectiveMpichFlat) {
    crash_in_collective(Flavor::Mpich, CollAlgo::Flat);
}
TEST(Faults, CrashInCollectiveMpichTree) {
    crash_in_collective(Flavor::Mpich, CollAlgo::Tree);
}

// ---------------------------------------------------------------------------
// Rank death at fiber scale: 256 fiber-scheduled ranks, one victim,
// and all 255 survivors must report the same MPI_ERR_PROC_FAILED.
// The error contract cannot dilute as the world grows past the old
// thread-per-rank wall -- this is the chaos leg of the rank-scaling
// acceptance criteria.
// ---------------------------------------------------------------------------

TEST(Faults, CrashInCollectiveAt256Ranks) {
    constexpr int kRanks = 256;
    constexpr int kVictim = 17;
    instr::Registry reg;
    World::Config cfg = faulted_cfg(Flavor::Lam, CollAlgo::Tree);
    cfg.join_deadline_seconds = 60.0;
    // The victim dies entering its 3rd allreduce (Init, 2 allreduces, boom).
    cfg.faults->kill_at_call(kVictim, 4);
    World world(reg, cfg);
    Observed obs;
    world.register_program("app", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        int me = 0;
        r.MPI_Comm_rank(r.MPI_COMM_WORLD(), &me);
        int rc = MPI_SUCCESS;
        for (int i = 0; i < 50 && rc == MPI_SUCCESS; ++i) {
            int in = me, out = 0;
            rc = r.MPI_Allreduce(&in, &out, 1, MPI_INT, simmpi::MPI_SUM,
                                 r.MPI_COMM_WORLD());
        }
        obs.error(me, rc);
        r.MPI_Finalize();
    });
    run_ranks(world, "app", kRanks);

    const auto epitaphs = world.epitaphs();
    ASSERT_EQ(epitaphs.size(), 1u);
    EXPECT_EQ(epitaphs[0].global_rank, kVictim);
    EXPECT_EQ(epitaphs[0].cause, Epitaph::Cause::Killed);
    EXPECT_EQ(epitaphs[0].last_call, "MPI_Allreduce");

    // The victim never reports; all 255 survivors report the same code.
    EXPECT_EQ(obs.first_error.count(kVictim), 0u);
    for (int me = 0; me < kRanks; ++me) {
        if (me == kVictim) continue;
        ASSERT_EQ(obs.first_error.count(me), 1u) << "rank " << me << " hung?";
        EXPECT_EQ(obs.first_error[me], MPI_ERR_PROC_FAILED) << "rank " << me;
    }
    EXPECT_FALSE(world.poisoned());  // MPI_ERRORS_RETURN is the default
}

// ---------------------------------------------------------------------------
// Crash seen from point-to-point: named-peer operations fail with
// MPI_ERR_RANK, both on the receive and the (eager and rendezvous)
// send side, without waiting for the deadline.
// ---------------------------------------------------------------------------

TEST(Faults, DeadPeerFailsRecvAndSendWithErrRank) {
    instr::Registry reg;
    World::Config cfg = faulted_cfg(Flavor::Lam, CollAlgo::Tree);
    cfg.faults->kill_at_call(1, 2);  // rank 1 dies right after MPI_Init
    World world(reg, cfg);
    Observed obs;
    world.register_program("app", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        int me = 0;
        r.MPI_Comm_rank(r.MPI_COMM_WORLD(), &me);
        if (me == 0) {
            const auto t0 = std::chrono::steady_clock::now();
            int v = 0;
            const int rc = r.MPI_Recv(&v, 1, MPI_INT, 1, 7, r.MPI_COMM_WORLD(),
                                      nullptr);
            obs.error(me, rc);
            obs.timing(me, seconds_since(t0));
            // Sends to the dead peer fail fast too.
            EXPECT_EQ(r.MPI_Send(&v, 1, MPI_INT, 1, 8, r.MPI_COMM_WORLD()),
                      MPI_ERR_RANK);
        } else {
            r.MPI_Barrier(r.MPI_COMM_WORLD());  // the call it dies in
        }
        r.MPI_Finalize();
    });
    run_ranks(world, "app", 2);

    ASSERT_EQ(obs.first_error.count(0), 1u);
    EXPECT_EQ(obs.first_error[0], MPI_ERR_RANK);
    // Liveness detection, not the 5 s deadline, unwedged the receive.
    EXPECT_LT(obs.elapsed[0], 2.0);
    ASSERT_EQ(world.epitaphs().size(), 1u);
    EXPECT_EQ(world.epitaphs()[0].global_rank, 1);
}

TEST(Faults, RendezvousSenderUnwedgesWhenReceiverDies) {
    instr::Registry reg;
    World::Config cfg = faulted_cfg(Flavor::Lam, CollAlgo::Tree);
    cfg.faults->kill_at_call(1, 2);  // receiver dies entering its MPI_Recv
    World world(reg, cfg);
    Observed obs;
    // Payload above the eager limit: the sender blocks on delivery.
    const int kBytes = 64 * 1024;
    world.register_program("app", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        int me = 0;
        r.MPI_Comm_rank(r.MPI_COMM_WORLD(), &me);
        std::vector<char> buf(static_cast<std::size_t>(kBytes), 'r');
        if (me == 0) {
            const auto t0 = std::chrono::steady_clock::now();
            const int rc =
                r.MPI_Send(buf.data(), kBytes, MPI_BYTE, 1, 7, r.MPI_COMM_WORLD());
            obs.error(me, rc);
            obs.timing(me, seconds_since(t0));
        } else {
            r.MPI_Recv(buf.data(), kBytes, MPI_BYTE, 0, 7, r.MPI_COMM_WORLD(),
                       nullptr);
        }
        r.MPI_Finalize();
    });
    run_ranks(world, "app", 2);

    ASSERT_EQ(obs.first_error.count(0), 1u);
    EXPECT_EQ(obs.first_error[0], MPI_ERR_RANK);
    EXPECT_LT(obs.elapsed[0], 2.0);  // liveness check, not deadline
}

// ---------------------------------------------------------------------------
// Hang injection: the stuck rank publishes its death *before* wedging,
// so survivors unwedge via the liveness check long before the hang (or
// any deadline) expires.
// ---------------------------------------------------------------------------

TEST(Faults, HangInBarrierUnwedgesSurvivorsViaLiveness) {
    constexpr double kHangSeconds = 1.0;
    instr::Registry reg;
    World::Config cfg = faulted_cfg(Flavor::Lam, CollAlgo::Tree);
    cfg.wait_deadline_seconds = 10.0;  // deadline clearly not the rescuer
    cfg.faults->hang_in_call(1, "MPI_Barrier", kHangSeconds);
    World world(reg, cfg);
    Observed obs;
    world.register_program("app", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        int me = 0;
        r.MPI_Comm_rank(r.MPI_COMM_WORLD(), &me);
        const auto t0 = std::chrono::steady_clock::now();
        const int rc = r.MPI_Barrier(r.MPI_COMM_WORLD());
        obs.error(me, rc);
        obs.timing(me, seconds_since(t0));
        r.MPI_Finalize();
    });
    const auto t0 = std::chrono::steady_clock::now();
    run_ranks(world, "app", 4);
    // join_all still has to wait out the hung thread itself.
    EXPECT_GE(seconds_since(t0), kHangSeconds * 0.9);

    const auto epitaphs = world.epitaphs();
    ASSERT_EQ(epitaphs.size(), 1u);
    EXPECT_EQ(epitaphs[0].global_rank, 1);
    EXPECT_EQ(epitaphs[0].cause, Epitaph::Cause::Hung);
    EXPECT_EQ(epitaphs[0].last_call, "MPI_Barrier");
    for (int me : {0, 2, 3}) {
        ASSERT_EQ(obs.first_error.count(me), 1u);
        EXPECT_EQ(obs.first_error[me], MPI_ERR_PROC_FAILED) << "rank " << me;
        // Unwedged well before the hang ended.
        EXPECT_LT(obs.elapsed[me], kHangSeconds * 0.75) << "rank " << me;
    }
}

// ---------------------------------------------------------------------------
// Lossy links: drops surface as the receiver's deadline error (the
// sender cannot tell), and a retransmission gets through; delays stall
// the wire but deliver intact.
// ---------------------------------------------------------------------------

TEST(Faults, DroppedMessageHitsReceiverDeadline) {
    instr::Registry reg;
    World::Config cfg = faulted_cfg(Flavor::Lam, CollAlgo::Tree);
    cfg.wait_deadline_seconds = 0.8;
    cfg.faults->drop_message(0, 1);
    World world(reg, cfg);
    Observed obs;
    world.register_program("app", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        int me = 0;
        r.MPI_Comm_rank(r.MPI_COMM_WORLD(), &me);
        int v = 41;
        if (me == 0) {
            // Silent loss: the eager sender still sees success.
            obs.error(me, r.MPI_Send(&v, 1, MPI_INT, 1, 7, r.MPI_COMM_WORLD()));
        } else {
            const auto t0 = std::chrono::steady_clock::now();
            const int rc =
                r.MPI_Recv(&v, 1, MPI_INT, 0, 7, r.MPI_COMM_WORLD(), nullptr);
            obs.error(me, rc);
            obs.timing(me, seconds_since(t0));
        }
        r.MPI_Finalize();
    });
    run_ranks(world, "app", 2);

    EXPECT_EQ(obs.first_error[0], MPI_SUCCESS);
    EXPECT_EQ(obs.first_error[1], MPI_ERR_OTHER);
    EXPECT_GE(obs.elapsed[1], 0.7);
    EXPECT_TRUE(world.epitaphs().empty());  // nobody died; link fault only
}

TEST(Faults, DroppedMessageThenRetransmitDelivers) {
    instr::Registry reg;
    World::Config cfg = faulted_cfg(Flavor::Lam, CollAlgo::Tree);
    cfg.faults->drop_message(0, 1, /*nth_match=*/1);
    World world(reg, cfg);
    Observed obs;
    world.register_program("app", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        int me = 0;
        r.MPI_Comm_rank(r.MPI_COMM_WORLD(), &me);
        if (me == 0) {
            int first = 41, second = 42;
            r.MPI_Send(&first, 1, MPI_INT, 1, 7, r.MPI_COMM_WORLD());   // dropped
            r.MPI_Send(&second, 1, MPI_INT, 1, 7, r.MPI_COMM_WORLD());  // arrives
        } else {
            int v = 0;
            EXPECT_EQ(r.MPI_Recv(&v, 1, MPI_INT, 0, 7, r.MPI_COMM_WORLD(), nullptr),
                      MPI_SUCCESS);
            obs.error(me, v);  // reuse the slot to carry the payload back
        }
        r.MPI_Finalize();
    });
    run_ranks(world, "app", 2);
    EXPECT_EQ(obs.first_error[1], 42);
}

TEST(Faults, DelayedMessageStallsWireButArrivesIntact) {
    constexpr double kDelay = 0.3;
    instr::Registry reg;
    World::Config cfg = faulted_cfg(Flavor::Lam, CollAlgo::Tree);
    cfg.faults->delay_message(0, 1, /*nth_match=*/1, kDelay);
    World world(reg, cfg);
    Observed obs;
    world.register_program("app", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        int me = 0;
        r.MPI_Comm_rank(r.MPI_COMM_WORLD(), &me);
        if (me == 0) {
            int v = 43;
            const auto t0 = std::chrono::steady_clock::now();
            EXPECT_EQ(r.MPI_Send(&v, 1, MPI_INT, 1, 7, r.MPI_COMM_WORLD()),
                      MPI_SUCCESS);
            obs.timing(me, seconds_since(t0));
        } else {
            int v = 0;
            const auto t0 = std::chrono::steady_clock::now();
            EXPECT_EQ(r.MPI_Recv(&v, 1, MPI_INT, 0, 7, r.MPI_COMM_WORLD(), nullptr),
                      MPI_SUCCESS);
            obs.timing(me, seconds_since(t0));
            obs.error(me, v);
        }
        r.MPI_Finalize();
    });
    run_ranks(world, "app", 2);

    EXPECT_EQ(obs.first_error[1], 43);
    // The delay stalls inside the sender's transport (a slow wire), so
    // both sides observe it.
    EXPECT_GE(obs.elapsed[0], kDelay * 0.8);
    EXPECT_GE(obs.elapsed[1], kDelay * 0.8);
}

// ---------------------------------------------------------------------------
// Spawn failure: every parent gets MPI_ERR_SPAWN with errcodes filled,
// no rank deadlocks in the spawn rendezvous, and the *next* spawn works.
// ---------------------------------------------------------------------------

TEST(Faults, SpawnFailureIsCollectiveAndRecoverable) {
    instr::Registry reg;
    World::Config cfg = faulted_cfg(Flavor::Lam, CollAlgo::Tree);
    cfg.faults->fail_spawn(/*nth_spawn=*/1);
    World world(reg, cfg);
    Observed first, second;
    std::atomic<int> children{0};
    world.register_program("child", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        ++children;
        r.MPI_Finalize();
    });
    world.register_program("parent", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        int me = 0;
        r.MPI_Comm_rank(r.MPI_COMM_WORLD(), &me);
        Comm inter = MPI_COMM_NULL;
        std::vector<int> errcodes;
        first.error(me, r.MPI_Comm_spawn("child", {}, 2, MPI_INFO_NULL, 0,
                                         r.MPI_COMM_WORLD(), &inter, &errcodes));
        EXPECT_EQ(inter, MPI_COMM_NULL);
        ASSERT_EQ(errcodes.size(), 2u);
        for (int e : errcodes) EXPECT_EQ(e, MPI_ERR_SPAWN);
        // The world is intact; a second attempt succeeds everywhere.
        second.error(me, r.MPI_Comm_spawn("child", {}, 2, MPI_INFO_NULL, 0,
                                          r.MPI_COMM_WORLD(), &inter, &errcodes));
        EXPECT_NE(inter, MPI_COMM_NULL);
        r.MPI_Finalize();
    });
    run_ranks(world, "parent", 2);

    for (int me : {0, 1}) {
        EXPECT_EQ(first.first_error[me], MPI_ERR_SPAWN) << "rank " << me;
        EXPECT_EQ(second.first_error[me], MPI_SUCCESS) << "rank " << me;
    }
    EXPECT_EQ(children.load(), 2);
    EXPECT_TRUE(world.epitaphs().empty());
}

TEST(Faults, SpawnOfUnknownProgramFailsInsteadOfThrowing) {
    // Satellite (b): the old implementation threw from inside the rank
    // thread when the spawned command was not registered; now it is a
    // proper collective spawn failure.
    instr::Registry reg;
    World world(reg, faulted_cfg(Flavor::Lam, CollAlgo::Tree));
    Observed obs;
    world.register_program("parent", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        int me = 0;
        r.MPI_Comm_rank(r.MPI_COMM_WORLD(), &me);
        Comm inter = MPI_COMM_NULL;
        std::vector<int> errcodes;
        obs.error(me, r.MPI_Comm_spawn("no-such-program", {}, 2, MPI_INFO_NULL, 0,
                                       r.MPI_COMM_WORLD(), &inter, &errcodes));
        EXPECT_EQ(inter, MPI_COMM_NULL);
        r.MPI_Finalize();
    });
    run_ranks(world, "parent", 2);
    for (int me : {0, 1}) EXPECT_EQ(obs.first_error[me], MPI_ERR_SPAWN);
    EXPECT_TRUE(world.epitaphs().empty());
    EXPECT_TRUE(world.all_finished());
}

TEST(Faults, LaunchOfUnknownProgramThrowsOnLaunchingThread) {
    instr::Registry reg;
    World world(reg, {});
    LaunchPlan plan;
    plan.placements = {"n0"};
    EXPECT_THROW(launch(world, "never-registered", {}, plan), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Errhandler semantics: MPI_Abort and MPI_ERRORS_ARE_FATAL poison the
// world; every rank terminates and join_all still completes.
// ---------------------------------------------------------------------------

TEST(Faults, AbortPoisonsWorldAndOutcomeIsAborted) {
    instr::Registry reg;
    World world(reg, faulted_cfg(Flavor::Lam, CollAlgo::Tree));
    world.register_program("app", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        int me = 0;
        r.MPI_Comm_rank(r.MPI_COMM_WORLD(), &me);
        if (me == 2) {
            r.MPI_Abort(r.MPI_COMM_WORLD(), 42);
            return;  // unreachable: MPI_Abort does not return
        }
        int rc = MPI_SUCCESS;
        for (int i = 0; i < 200 && rc == MPI_SUCCESS; ++i)
            rc = r.MPI_Barrier(r.MPI_COMM_WORLD());
        r.MPI_Finalize();
    });
    run_ranks(world, "app", 3);

    EXPECT_TRUE(world.poisoned());
    EXPECT_EQ(world.poison_code(), 42);
    const auto epitaphs = world.epitaphs();
    int aborted = 0;
    for (const auto& e : epitaphs)
        if (e.cause == Epitaph::Cause::Aborted) ++aborted;
    EXPECT_EQ(aborted, 1);

    const core::RunOutcome o = core::outcome_from_world(world);
    EXPECT_EQ(o.status, core::RunOutcome::Status::Aborted);
    EXPECT_EQ(o.abort_code, 42);
    EXPECT_FALSE(o.ok());
}

TEST(Faults, ErrorsAreFatalTerminatesEveryRank) {
    instr::Registry reg;
    World::Config cfg = faulted_cfg(Flavor::Lam, CollAlgo::Tree);
    cfg.default_errhandler = MPI_ERRORS_ARE_FATAL;
    cfg.faults->kill_at_call(1, 3);
    World world(reg, cfg);
    world.register_program("app", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        int rc = MPI_SUCCESS;
        for (int i = 0; i < 200 && rc == MPI_SUCCESS; ++i)
            rc = r.MPI_Barrier(r.MPI_COMM_WORLD());
        // Unreachable under MPI_ERRORS_ARE_FATAL: the first failing
        // barrier terminates the rank instead of returning.
        ADD_FAILURE() << "rank survived a fatal-errhandler failure, rc=" << rc;
    });
    run_ranks(world, "app", 3);

    EXPECT_TRUE(world.poisoned());
    const auto epitaphs = world.epitaphs();
    EXPECT_EQ(epitaphs.size(), 3u);  // the victim + both poisoned survivors
    int killed = 0, poisoned = 0;
    for (const auto& e : epitaphs) {
        if (e.cause == Epitaph::Cause::Killed) ++killed;
        if (e.cause == Epitaph::Cause::Poisoned) ++poisoned;
    }
    EXPECT_EQ(killed, 1);
    EXPECT_EQ(poisoned, 2);
}

// Regression: poison() used to publish an export snapshot inline, and
// the snapshot pass re-takes every mailbox mutex (simmpi.mailbox.*
// gauges).  A fatal transport error raised from inside send_body's
// flow-control loop / recv_body's scan -- both run their doom checks
// under the destination's mailbox mutex -- therefore self-deadlocked
// whenever M2P_PVAR_EXPORT was set.  The error paths now drop mb.mu
// first and the death/poison flush is asynchronous; this test hangs
// (and is watchdog-aborted) if either regresses.
TEST(Faults, FatalTransportErrorWithExportAttachedDoesNotDeadlock) {
    const std::string path = ::testing::TempDir() + "faults_export." +
                             std::to_string(::getpid()) + ".pvar";
    ::unlink(path.c_str());
    ::setenv("M2P_PVAR_EXPORT", path.c_str(), 1);
    ::setenv("M2P_PVAR_EXPORT_PERIOD_US", "500", 1);
    {
        instr::Registry reg;
        World::Config cfg = faulted_cfg(Flavor::Lam, CollAlgo::Tree);
        cfg.default_errhandler = MPI_ERRORS_ARE_FATAL;
        cfg.wait_deadline_seconds = 0.3;
        cfg.mailbox_capacity = 4096;  // a few eager sends fill it
        World world(reg, cfg);
        world.register_program("jam", [](Rank& r, const std::vector<std::string>&) {
            r.MPI_Init();
            const Comm w = r.MPI_COMM_WORLD();
            int me = 0;
            r.MPI_Comm_rank(w, &me);
            if (me == 0) {
                // Eager sends against a receiver that never drains:
                // the flow-control park hits the wait deadline and the
                // FATAL errhandler poisons the world from the send
                // error path.
                std::vector<char> buf(512, 'x');
                int rc = MPI_SUCCESS;
                for (int i = 0; i < 1000 && rc == MPI_SUCCESS; ++i)
                    rc = r.MPI_Send(buf.data(), 512, MPI_BYTE, 1, 7, w);
                ADD_FAILURE() << "rank 0 survived a fatal send, rc=" << rc;
            } else {
                // A receive nothing ever matches: its deadline fires
                // the same fatal path from recv_body's scan loop.
                char b = 0;
                r.MPI_Recv(&b, 1, MPI_BYTE, 0, 99, w, nullptr);
                ADD_FAILURE() << "rank 1 survived a fatal recv";
            }
            r.MPI_Finalize();
        });
        run_ranks(world, "jam", 2);
        EXPECT_TRUE(world.poisoned());
        EXPECT_EQ(world.epitaphs().size(), 2u);
    }
    ::unsetenv("M2P_PVAR_EXPORT");
    ::unsetenv("M2P_PVAR_EXPORT_PERIOD_US");
    ::unlink(path.c_str());
}

// Regression: MPI_Win_lock's abandon path used to run check_poisoned()
// while still holding the target shard's mutex.  For a lock on the
// rank's OWN shard (legal and common), the rma_detach_all() inside
// check_poisoned re-locks that same non-recursive mutex:
// self-deadlock.  The abandon path now withdraws under the lock and
// errors after releasing it; this test wedges on regression.
TEST(Faults, AbortWhileHoldingPassiveLockUnwedgesSelfLockWaiter) {
    instr::Registry reg;
    World::Config cfg = faulted_cfg(Flavor::Lam, CollAlgo::Tree);
    cfg.wait_deadline_seconds = 5.0;
    World world(reg, cfg);
    world.register_program("locker", [](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        std::vector<std::int32_t> mem(4, 0);
        Win win = MPI_WIN_NULL;
        if (r.MPI_Win_create(mem.data(), 16, 4, MPI_INFO_NULL, w, &win) !=
            MPI_SUCCESS) {
            r.MPI_Finalize();
            return;
        }
        if (me == 1) {
            // Grab rank 0's shard exclusively, let rank 0 queue behind
            // us, then abort without unlocking: the waiter can only be
            // unwedged by the poison broadcast.
            r.MPI_Win_lock(MPI_LOCK_EXCLUSIVE, 0, 0, win);
            r.MPI_Barrier(w);
            simmpi::sched::sleep_for(std::chrono::duration<double>(0.1));
            r.MPI_Abort(w, 42);
            return;  // unreachable
        }
        r.MPI_Barrier(w);
        // Queues behind rank 1's held lock on our OWN shard; the abort
        // dooms the wait and the abandon path must not re-lock the
        // shard it is withdrawing from.
        const int rc = r.MPI_Win_lock(MPI_LOCK_EXCLUSIVE, 0, 0, win);
        ADD_FAILURE() << "rank 0 survived the poisoned lock wait, rc=" << rc;
        r.MPI_Finalize();
    });
    run_ranks(world, "locker", 2);
    EXPECT_TRUE(world.poisoned());
    EXPECT_EQ(world.poison_code(), 42);
}

// ---------------------------------------------------------------------------
// join_all watchdog (satellite a): a rank wedged outside any MPI call
// trips the join deadline, which poisons the world instead of hanging
// the harness forever.
// ---------------------------------------------------------------------------

TEST(Faults, JoinAllWatchdogPoisonsStragglers) {
    instr::Registry reg;
    World::Config cfg;
    cfg.join_deadline_seconds = 0.3;
    World world(reg, cfg);
    world.register_program("straggler", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        int me = 0;
        r.MPI_Comm_rank(r.MPI_COMM_WORLD(), &me);
        // Rank 1 wedges outside MPI where no liveness check can see it;
        // only the watchdog's poison (observed at the next MPI call)
        // brings it home.
        if (me == 1) std::this_thread::sleep_for(std::chrono::milliseconds(900));
        r.MPI_Barrier(r.MPI_COMM_WORLD());
        r.MPI_Finalize();
    });
    const auto t0 = std::chrono::steady_clock::now();
    run_ranks(world, "straggler", 2);
    EXPECT_LT(seconds_since(t0), 10.0);
    EXPECT_TRUE(world.poisoned());
    EXPECT_TRUE(world.all_finished());
}

// ---------------------------------------------------------------------------
// RMA epochs under faults: the data plane's per-epoch completion
// tokens must deliver the PR 3 error contract, not park survivors
// forever -- a fence losing a member fails with MPI_ERR_PROC_FAILED,
// and a lock queue behind a dead holder fails with MPI_ERR_RANK.
// ---------------------------------------------------------------------------

TEST(Faults, KillMidFenceFailsSurvivorsWithProcFailed) {
    instr::Registry reg;
    // Mpich: the counter/token fence path (LAM's fence rides the
    // barrier, which CrashInCollective already covers).
    World::Config cfg = faulted_cfg(Flavor::Mpich, CollAlgo::Tree);
    // Calls: MPI_Init, MPI_Win_create, boom entering the first fence.
    cfg.faults->kill_at_call(1, 3);
    World world(reg, cfg);
    Observed obs;
    world.register_program("app", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        int me = 0;
        r.MPI_Comm_rank(r.MPI_COMM_WORLD(), &me);
        std::vector<std::int32_t> mem(4, 0);
        Win win = MPI_WIN_NULL;
        r.MPI_Win_create(mem.data(), 16, 4, MPI_INFO_NULL, r.MPI_COMM_WORLD(), &win);
        int rc = MPI_SUCCESS;
        const auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < 200 && rc == MPI_SUCCESS; ++i)
            rc = r.MPI_Win_fence(0, win);
        obs.error(me, rc);
        obs.timing(me, seconds_since(t0));
        r.MPI_Finalize();
    });
    run_ranks(world, "app", 4);

    ASSERT_EQ(world.epitaphs().size(), 1u);
    EXPECT_EQ(world.epitaphs()[0].global_rank, 1);
    EXPECT_EQ(world.epitaphs()[0].last_call, "MPI_Win_fence");
    EXPECT_EQ(obs.first_error.count(1), 0u);
    for (int me : {0, 2, 3}) {
        ASSERT_EQ(obs.first_error.count(me), 1u) << "rank " << me << " hung?";
        EXPECT_EQ(obs.first_error[me], MPI_ERR_PROC_FAILED) << "rank " << me;
        // Liveness detection, not the 5 s wait deadline, unparked us.
        EXPECT_LT(obs.elapsed[me], 2.0) << "rank " << me;
    }
}

TEST(Faults, KillLockHolderFailsQueuedWaitersWithErrRank) {
    instr::Registry reg;
    World::Config cfg = faulted_cfg(Flavor::Lam, CollAlgo::Tree);
    // Rank 1's calls: Init, Win_create, Win_lock, boom in the barrier
    // it enters while still holding rank 0's exclusive lock.
    cfg.faults->kill_at_call(1, 4);
    World world(reg, cfg);
    Observed obs;
    std::atomic<bool> lock_held{false};
    world.register_program("app", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        int me = 0;
        r.MPI_Comm_rank(r.MPI_COMM_WORLD(), &me);
        std::vector<std::int32_t> mem(4, 0);
        Win win = MPI_WIN_NULL;
        r.MPI_Win_create(mem.data(), 16, 4, MPI_INFO_NULL, r.MPI_COMM_WORLD(), &win);
        if (me == 1) {
            ASSERT_EQ(r.MPI_Win_lock(MPI_LOCK_EXCLUSIVE, 0, 0, win), MPI_SUCCESS);
            lock_held = true;
            r.MPI_Barrier(r.MPI_COMM_WORLD());  // dies here, lock never released
        } else {
            while (!lock_held) simmpi::sched::sleep_for(std::chrono::milliseconds(1));
            const auto t0 = std::chrono::steady_clock::now();
            obs.error(me, r.MPI_Win_lock(MPI_LOCK_EXCLUSIVE, 0, 0, win));
            obs.timing(me, seconds_since(t0));
            // The dead holder still owns the lock, so a free attempt is
            // refused instead of wedging the collective.
            EXPECT_EQ(r.MPI_Win_free(&win), MPI_ERR_WIN);
        }
        r.MPI_Finalize();
    });
    run_ranks(world, "app", 4);

    ASSERT_EQ(world.epitaphs().size(), 1u);
    EXPECT_EQ(world.epitaphs()[0].global_rank, 1);
    for (int me : {0, 2, 3}) {
        ASSERT_EQ(obs.first_error.count(me), 1u) << "rank " << me << " hung?";
        EXPECT_EQ(obs.first_error[me], MPI_ERR_RANK) << "rank " << me;
        EXPECT_LT(obs.elapsed[me], 2.0) << "rank " << me;
    }
}

TEST(Faults, WinFreeWithHeldLockIsRefusedThenSucceeds) {
    // Satellite: MPI_Win_free racing a pending passive-target epoch
    // must refuse (MPI_ERR_WIN) while the lock is held, never park the
    // freer in the collective, and succeed once the lock is gone.
    instr::Registry reg;
    World world(reg, faulted_cfg(Flavor::Lam, CollAlgo::Tree));
    Observed obs;
    std::atomic<bool> locked{false}, refused{false}, unlocked{false};
    world.register_program("app", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        int me = 0;
        r.MPI_Comm_rank(r.MPI_COMM_WORLD(), &me);
        std::vector<std::int32_t> mem(4, 0);
        Win win = MPI_WIN_NULL;
        r.MPI_Win_create(mem.data(), 16, 4, MPI_INFO_NULL, r.MPI_COMM_WORLD(), &win);
        if (me == 1) {
            ASSERT_EQ(r.MPI_Win_lock(MPI_LOCK_EXCLUSIVE, 0, 0, win), MPI_SUCCESS);
            locked = true;
            while (!refused) simmpi::sched::sleep_for(std::chrono::milliseconds(1));
            ASSERT_EQ(r.MPI_Win_unlock(0, win), MPI_SUCCESS);
            unlocked = true;
        } else {
            while (!locked) simmpi::sched::sleep_for(std::chrono::milliseconds(1));
            obs.error(me, r.MPI_Win_free(&win));  // refused: epoch in flight
            refused = true;
            while (!unlocked) simmpi::sched::sleep_for(std::chrono::milliseconds(1));
        }
        ASSERT_EQ(r.MPI_Win_free(&win), MPI_SUCCESS);
        r.MPI_Finalize();
    });
    run_ranks(world, "app", 2);
    EXPECT_EQ(obs.first_error[0], MPI_ERR_WIN);
    EXPECT_TRUE(world.epitaphs().empty());
    EXPECT_TRUE(world.all_finished());
}

// ---------------------------------------------------------------------------
// Tool-side degradation (the acceptance scenario): a Performance
// Consultant session over a PPerfMark program loses a rank mid-run,
// completes without hanging, reports RanksLost with the epitaph,
// retires the dead process in the resource hierarchy, and still has
// findings for the survivors.
// ---------------------------------------------------------------------------

TEST(Faults, ConsultantRunSurvivesKilledRank) {
    simmpi::World::Config wcfg;
    wcfg.wait_deadline_seconds = 2.0;
    wcfg.join_deadline_seconds = 60.0;
    wcfg.faults = std::make_shared<FaultPlan>();
    // Client rank 1 dies a few thousand sends into the run, mid-search.
    wcfg.faults->kill_at_call(1, 5000);
    core::Session s(Flavor::Lam, {}, wcfg);
    ppm::Params p;
    p.iterations = 150000;
    ppm::register_all(s.world(), p);

    core::PerformanceConsultant::Options opts;
    opts.eval_interval = 0.06;
    opts.max_search_seconds = 6.0;
    const core::PCReport r = s.run_with_consultant(ppm::kSmallMessages, 6, opts);

    EXPECT_EQ(r.outcome.status, core::RunOutcome::Status::RanksLost);
    ASSERT_EQ(r.outcome.epitaphs.size(), 1u);
    EXPECT_EQ(r.outcome.epitaphs[0].global_rank, 1);
    EXPECT_EQ(r.outcome.epitaphs[0].cause, Epitaph::Cause::Killed);

    // The dead process is retired in the hierarchy (greyed out, and
    // excluded from further PC refinement).
    EXPECT_TRUE(s.tool().hierarchy().get("/Process/p1").retired);
    EXPECT_FALSE(s.tool().hierarchy().get("/Process/p2").retired);

    // Survivor findings still come out, flagged as a degraded search.
    EXPECT_GT(r.experiments_run, 0);
    const std::string rendered = core::PerformanceConsultant::render_condensed(r);
    EXPECT_NE(rendered.find("degraded search"), std::string::npos) << rendered;
}

TEST(Faults, SessionRunReportsRanksLost) {
    simmpi::World::Config wcfg;
    wcfg.wait_deadline_seconds = 2.0;
    wcfg.faults = std::make_shared<FaultPlan>();
    wcfg.faults->kill_at_call(2, 10);
    core::Session s(Flavor::Lam, {}, wcfg);
    ppm::Params p;
    p.iterations = 50;
    ppm::register_all(s.world(), p);
    const core::RunOutcome o = s.run(ppm::kRandomBarrier, 4);
    EXPECT_EQ(o.status, core::RunOutcome::Status::RanksLost);
    ASSERT_EQ(o.epitaphs.size(), 1u);
    EXPECT_EQ(o.epitaphs[0].global_rank, 2);
    EXPECT_FALSE(o.ok());
}

}  // namespace
}  // namespace m2p
