// ULFM-style recovery plane: the revoked-communicator error contract
// (every op class fails with MPI_ERR_REVOKED, promptly, on every
// member, across flavors and rank counts), fault-tolerant agreement
// semantics, shrink-and-continue, comm split, spawn retry, failure
// acknowledgement, and the end-to-end tool acceptance scenario -- a
// 256-rank consultant session that loses a rank mid-search, shrinks,
// and keeps measuring survivors (RunOutcome::Recovered).  Runs under
// TSAN and ASan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "simmpi/faults.hpp"
#include "simmpi/launcher.hpp"
#include "simmpi/rank.hpp"
#include "simmpi/sched.hpp"
#include "simmpi/world.hpp"
#include "trace/flight_recorder.hpp"

namespace m2p {
namespace {

using simmpi::Comm;
using simmpi::Epitaph;
using simmpi::FaultPlan;
using simmpi::File;
using simmpi::Flavor;
using simmpi::Group;
using simmpi::LaunchPlan;
using simmpi::Rank;
using simmpi::Win;
using simmpi::World;
using simmpi::MPI_COMM_NULL;
using simmpi::MPI_ERR_PROC_FAILED;
using simmpi::MPI_ERR_REVOKED;
using simmpi::MPI_ERR_SPAWN;
using simmpi::MPI_FILE_NULL;
using simmpi::MPI_INFO_NULL;
using simmpi::MPI_INT;
using simmpi::MPI_MODE_CREATE;
using simmpi::MPI_MODE_DELETE_ON_CLOSE;
using simmpi::MPI_MODE_RDWR;
using simmpi::MPI_SUCCESS;
using simmpi::MPI_SUM;
using simmpi::MPI_UNDEFINED;
using simmpi::MPI_WIN_NULL;

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
}

/// Per-rank observations collected from inside program bodies, read
/// back on the test thread after join_all.
struct Observed {
    std::mutex mu;
    std::map<int, int> rc;          ///< rank -> probed call's return code
    std::map<int, double> elapsed;  ///< rank -> seconds inside that call
    void record(int me, int code, double secs) {
        std::lock_guard lk(mu);
        rc[me] = code;
        elapsed[me] = secs;
    }
};

World::Config recovery_cfg(Flavor f) {
    World::Config cfg;
    cfg.flavor = f;
    // Wide enough apart that a revoke serviced by the deadline sweep
    // instead of the wakeup broadcast is unmistakable in `elapsed`.
    cfg.wait_deadline_seconds = 5.0;
    cfg.join_deadline_seconds = 60.0;
    cfg.faults = std::make_shared<FaultPlan>();
    return cfg;
}

void run_ranks(World& world, const std::string& prog, int n) {
    LaunchPlan plan;
    for (int i = 0; i < n; ++i)
        plan.placements.push_back("node" + std::to_string(i % 2));
    launch(world, prog, {}, plan);
    world.join_all();
}

// ---------------------------------------------------------------------------
// The revoked-comm error contract.  One op class at a time: every rank
// but 0 blocks in the op on a dup of MPI_COMM_WORLD, rank 0 revokes the
// dup and then issues the same op itself.  Every member must come back
// with MPI_ERR_REVOKED -- the parked ranks woken by the revoke
// broadcast (well before the 5 s wait deadline), rank 0 rejected at the
// entry pre-check.  Afterwards the survivors agree and shrink the
// revoked comm and run one collective on the replacement, proving the
// revoke left no wedged state behind.
// ---------------------------------------------------------------------------

enum class OpClass { Pt2pt, Collective, RmaSync, Io };

const char* op_name(OpClass op) {
    switch (op) {
        case OpClass::Pt2pt: return "pt2pt";
        case OpClass::Collective: return "collective";
        case OpClass::RmaSync: return "rma";
        case OpClass::Io: return "io";
    }
    return "?";
}

void revoked_op_round(Flavor flavor, int nranks, OpClass op) {
    SCOPED_TRACE(std::string("flavor=") + (flavor == Flavor::Lam ? "lam" : "mpich") +
                 " nranks=" + std::to_string(nranks) + " op=" + op_name(op));
    instr::Registry reg;
    World world(reg, recovery_cfg(flavor));
    Observed obs;
    std::atomic<int> shrink_ok{0}, post_barrier_ok{0};
    const std::string scratch = std::string("revoked_") + op_name(op) + ".dat";
    world.register_program("app", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        int me = 0, n = 0;
        r.MPI_Comm_rank(r.MPI_COMM_WORLD(), &me);
        r.MPI_Comm_size(r.MPI_COMM_WORLD(), &n);
        Comm c = MPI_COMM_NULL;
        ASSERT_EQ(r.MPI_Comm_dup(r.MPI_COMM_WORLD(), &c), MPI_SUCCESS);

        // Comm-scoped resources must exist before the revoke: windows
        // and file handles are created collectively.
        Win win = MPI_WIN_NULL;
        File fh = MPI_FILE_NULL;
        int base = 0;
        if (op == OpClass::RmaSync)
            ASSERT_EQ(r.MPI_Win_create(&base, sizeof base, sizeof base,
                                       MPI_INFO_NULL, c, &win),
                      MPI_SUCCESS);
        if (op == OpClass::Io)
            ASSERT_EQ(r.MPI_File_open(c, scratch,
                                      MPI_MODE_CREATE | MPI_MODE_RDWR |
                                          MPI_MODE_DELETE_ON_CLOSE,
                                      MPI_INFO_NULL, &fh),
                      MPI_SUCCESS);

        if (me == 0) {
            // Give the others time to park inside the op, then pull
            // the plug.  (The contract holds either way -- a late
            // arriver hits the entry pre-check instead -- but parking
            // first is the interesting path: it exercises the wakeup
            // broadcast, and `elapsed` below proves no one rode the
            // 5 s deadline out.)
            simmpi::sched::sleep_for(std::chrono::milliseconds(50));
            ASSERT_EQ(r.MPI_Comm_revoke(c), MPI_SUCCESS);
        }
        int rc = MPI_SUCCESS;
        const auto t0 = std::chrono::steady_clock::now();
        switch (op) {
            case OpClass::Pt2pt: {
                int v = 0;  // no matching send ever posted
                rc = r.MPI_Recv(&v, 1, MPI_INT, (me + 1) % n, 99, c, nullptr);
                break;
            }
            case OpClass::Collective:
                rc = r.MPI_Barrier(c);
                break;
            case OpClass::RmaSync:
                rc = r.MPI_Win_fence(0, win);
                break;
            case OpClass::Io: {
                int v = 0;
                rc = r.MPI_File_read_all(fh, &v, 1, MPI_INT, nullptr);
                break;
            }
        }
        obs.record(me, rc, seconds_since(t0));

        // The revoked comm still supports the recovery collectives:
        // agreement completes, shrink hands back a working comm.
        int flag = 1;
        r.MPI_Comm_agree(c, &flag);
        EXPECT_EQ(flag, 1);  // nobody died, nobody voted no
        Comm fresh = MPI_COMM_NULL;
        if (r.MPI_Comm_shrink(c, &fresh) == MPI_SUCCESS && fresh != MPI_COMM_NULL) {
            ++shrink_ok;
            if (r.MPI_Barrier(fresh) == MPI_SUCCESS) ++post_barrier_ok;
        }
        r.MPI_Finalize();
    });
    run_ranks(world, "app", nranks);

    ASSERT_TRUE(world.all_finished());
    EXPECT_TRUE(world.epitaphs().empty());
    ASSERT_EQ(static_cast<int>(obs.rc.size()), nranks);
    for (const auto& [me, rc] : obs.rc)
        EXPECT_EQ(rc, MPI_ERR_REVOKED) << "rank " << me;
    // Prompt propagation: everyone is out well before the 5 s wait
    // deadline, so the wakeup really was the broadcast, not the sweep.
    for (const auto& [me, secs] : obs.elapsed)
        EXPECT_LT(secs, 2.5) << "rank " << me;
    EXPECT_EQ(shrink_ok.load(), nranks);
    EXPECT_EQ(post_barrier_ok.load(), nranks);
}

TEST(Recovery, RevokedCommFailsEveryOpClassLam) {
    for (int nranks : {2, 64, 256})
        for (OpClass op : {OpClass::Pt2pt, OpClass::Collective, OpClass::RmaSync,
                           OpClass::Io})
            revoked_op_round(Flavor::Lam, nranks, op);
}

TEST(Recovery, RevokedCommFailsEveryOpClassMpich) {
    for (int nranks : {2, 64, 256})
        for (OpClass op : {OpClass::Pt2pt, OpClass::Collective, OpClass::RmaSync,
                           OpClass::Io})
            revoked_op_round(Flavor::Mpich, nranks, op);
}

// ---------------------------------------------------------------------------
// Agreement semantics: AND of the votes when everyone contributes
// (uniform MPI_SUCCESS), uniform MPI_ERR_PROC_FAILED when a member
// dies mid-vote -- but the survivors still all get the same flag.
// ---------------------------------------------------------------------------

TEST(Recovery, AgreeIsAndOfVotes) {
    instr::Registry reg;
    World world(reg, recovery_cfg(Flavor::Lam));
    Observed round1, round2;
    world.register_program("app", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        int me = 0;
        r.MPI_Comm_rank(r.MPI_COMM_WORLD(), &me);
        int flag = 1;
        int rc = r.MPI_Comm_agree(r.MPI_COMM_WORLD(), &flag);
        round1.record(me, rc, flag);
        flag = (me == 2) ? 0 : 1;  // one dissenter flips the AND
        rc = r.MPI_Comm_agree(r.MPI_COMM_WORLD(), &flag);
        round2.record(me, rc, flag);
        r.MPI_Finalize();
    });
    run_ranks(world, "app", 4);
    for (int me = 0; me < 4; ++me) {
        EXPECT_EQ(round1.rc[me], MPI_SUCCESS) << "rank " << me;
        EXPECT_EQ(round1.elapsed[me], 1.0) << "rank " << me;
        EXPECT_EQ(round2.rc[me], MPI_SUCCESS) << "rank " << me;
        EXPECT_EQ(round2.elapsed[me], 0.0) << "rank " << me;
    }
}

TEST(Recovery, AgreeToleratesMidVoteDeath) {
    instr::Registry reg;
    World::Config cfg = recovery_cfg(Flavor::Lam);
    // Rank 2's second MPI call kills it -- and only rank 2 makes that
    // call (a barrier nobody else joins), so it dies before voting.
    cfg.faults->kill_at_call(2, 2);
    World world(reg, cfg);
    Observed obs;
    world.register_program("app", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        int me = 0;
        r.MPI_Comm_rank(r.MPI_COMM_WORLD(), &me);
        if (me == 2) {
            r.MPI_Barrier(r.MPI_COMM_WORLD());  // killed here
            return;
        }
        int flag = 1;
        const int rc = r.MPI_Comm_agree(r.MPI_COMM_WORLD(), &flag);
        obs.record(me, rc, flag);
        r.MPI_Finalize();
    });
    run_ranks(world, "app", 4);

    ASSERT_EQ(world.epitaphs().size(), 1u);
    EXPECT_EQ(world.epitaphs()[0].global_rank, 2);
    for (int me : {0, 1, 3}) {
        // Uniform verdict: the vote completed, but not everyone could
        // contribute, and every survivor is told so.
        EXPECT_EQ(obs.rc[me], MPI_ERR_PROC_FAILED) << "rank " << me;
        EXPECT_EQ(obs.elapsed[me], 1.0) << "rank " << me;
    }
}

// ---------------------------------------------------------------------------
// Shrink after a real death: survivors rebuild in parent order, the
// replacement comm works, the world is marked recovered, and the
// flight recorder holds the revoke/agree/shrink breadcrumbs.
// ---------------------------------------------------------------------------

TEST(Recovery, ShrinkAfterDeathRebuildsWorkingComm) {
    constexpr int kRanks = 8, kVictim = 3;
    instr::Registry reg;
    World::Config cfg = recovery_cfg(Flavor::Lam);
    cfg.faults->kill_at_call(kVictim, 4);
    World world(reg, cfg);
    Observed obs;
    std::atomic<int> sum_checks{0};
    world.register_program("app", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        int me = 0;
        r.MPI_Comm_rank(r.MPI_COMM_WORLD(), &me);
        int rc = MPI_SUCCESS;
        for (int i = 0; i < 50 && rc == MPI_SUCCESS; ++i) {
            int in = me, out = 0;
            rc = r.MPI_Allreduce(&in, &out, 1, MPI_INT, MPI_SUM, r.MPI_COMM_WORLD());
        }
        ASSERT_NE(rc, MPI_SUCCESS);  // the death must surface
        r.MPI_Comm_revoke(r.MPI_COMM_WORLD());
        int flag = 1;
        r.MPI_Comm_agree(r.MPI_COMM_WORLD(), &flag);
        Comm fresh = MPI_COMM_NULL;
        ASSERT_EQ(r.MPI_Comm_shrink(r.MPI_COMM_WORLD(), &fresh), MPI_SUCCESS);
        int n = 0, newme = -1;
        r.MPI_Comm_size(fresh, &n);
        r.MPI_Comm_rank(fresh, &newme);
        EXPECT_EQ(n, kRanks - 1);
        // Parent order preserved: ranks above the victim slide down one.
        EXPECT_EQ(newme, me < kVictim ? me : me - 1);
        int in = 1, out = 0;
        EXPECT_EQ(r.MPI_Allreduce(&in, &out, 1, MPI_INT, MPI_SUM, fresh),
                  MPI_SUCCESS);
        if (out == kRanks - 1) ++sum_checks;
        obs.record(me, MPI_SUCCESS, 0.0);
        r.MPI_Finalize();
    });
    run_ranks(world, "app", kRanks);

    ASSERT_TRUE(world.all_finished());
    ASSERT_EQ(world.epitaphs().size(), 1u);
    EXPECT_EQ(world.epitaphs()[0].global_rank, kVictim);
    EXPECT_EQ(sum_checks.load(), kRanks - 1);
    EXPECT_TRUE(world.recovered());

    // Postmortem story: the ring must show who revoked, that the vote
    // ran, and that the shrink closed.
    ASSERT_NE(world.recorder(), nullptr);
    int revokes = 0, agrees = 0, shrinks = 0;
    for (const trace::Event& e : world.recorder()->snapshot()) {
        if (e.kind == static_cast<std::uint32_t>(trace::EventKind::Revoke)) ++revokes;
        if (e.kind == static_cast<std::uint32_t>(trace::EventKind::Agree)) ++agrees;
        if (e.kind == static_cast<std::uint32_t>(trace::EventKind::Shrink)) ++shrinks;
    }
    EXPECT_GE(revokes, 1);
    EXPECT_GE(agrees, 1);
    EXPECT_GE(shrinks, 1);
}

// ---------------------------------------------------------------------------
// MPI_Comm_split: partitions by color, orders by (key, parent rank),
// MPI_UNDEFINED opts out with MPI_COMM_NULL, and the pieces work.
// ---------------------------------------------------------------------------

TEST(Recovery, SplitPartitionsByColorAndOrdersByKey) {
    constexpr int kRanks = 6;
    instr::Registry reg;
    World world(reg, recovery_cfg(Flavor::Lam));
    Observed obs;
    std::atomic<int> null_comms{0};
    world.register_program("app", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        int me = 0;
        r.MPI_Comm_rank(r.MPI_COMM_WORLD(), &me);
        // Rank 5 opts out; the rest split odd/even with descending-key
        // ordering, so the largest parent rank leads each piece.
        const int color = (me == 5) ? MPI_UNDEFINED : me % 2;
        Comm part = MPI_COMM_NULL;
        ASSERT_EQ(r.MPI_Comm_split(r.MPI_COMM_WORLD(), color, -me, &part),
                  MPI_SUCCESS);
        if (me == 5) {
            EXPECT_EQ(part, MPI_COMM_NULL);
            ++null_comms;
            r.MPI_Finalize();
            return;
        }
        ASSERT_NE(part, MPI_COMM_NULL);
        int n = 0, sub = -1;
        r.MPI_Comm_size(part, &n);
        r.MPI_Comm_rank(part, &sub);
        // color 0: parents {0,2,4} keys {0,-2,-4} -> order 4,2,0.
        // color 1: parents {1,3}   keys {-1,-3}   -> order 3,1.
        const int expect_n = (me % 2 == 0) ? 3 : 2;
        const int expect_sub = (expect_n - 1) - me / 2;
        EXPECT_EQ(n, expect_n) << "rank " << me;
        int in = me, out = 0;
        ASSERT_EQ(r.MPI_Allreduce(&in, &out, 1, MPI_INT, MPI_SUM, part),
                  MPI_SUCCESS);
        EXPECT_EQ(out, me % 2 == 0 ? 0 + 2 + 4 : 1 + 3);
        obs.record(me, sub, expect_sub);
        r.MPI_Finalize();
    });
    run_ranks(world, "app", kRanks);
    EXPECT_TRUE(world.epitaphs().empty());
    EXPECT_EQ(null_comms.load(), 1);
    ASSERT_EQ(obs.rc.size(), 5u);
    for (const auto& [me, sub] : obs.rc)
        EXPECT_EQ(static_cast<double>(sub), obs.elapsed[me]) << "rank " << me;
}

// ---------------------------------------------------------------------------
// Spawn retry: a transient fail_spawn fault (specs fire once) is
// absorbed by the bounded-backoff retry loop when the config allows
// more than one attempt.
// ---------------------------------------------------------------------------

TEST(Recovery, SpawnRetryAbsorbsTransientFailure) {
    instr::Registry reg;
    World::Config cfg = recovery_cfg(Flavor::Lam);
    cfg.faults->fail_spawn(/*nth_spawn=*/1);
    cfg.spawn_retry_attempts = 3;
    cfg.spawn_retry_backoff_seconds = 0.005;
    World world(reg, cfg);
    Observed obs;
    std::atomic<int> children{0};
    world.register_program("child", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        ++children;
        r.MPI_Finalize();
    });
    world.register_program("parent", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        int me = 0;
        r.MPI_Comm_rank(r.MPI_COMM_WORLD(), &me);
        Comm inter = MPI_COMM_NULL;
        std::vector<int> errcodes;
        const auto t0 = std::chrono::steady_clock::now();
        const int rc = r.MPI_Comm_spawn("child", {}, 2, MPI_INFO_NULL, 0,
                                        r.MPI_COMM_WORLD(), &inter, &errcodes);
        obs.record(me, rc, seconds_since(t0));
        EXPECT_NE(inter, MPI_COMM_NULL);
        r.MPI_Finalize();
    });
    run_ranks(world, "parent", 2);

    for (int me : {0, 1}) {
        // The first attempt failed and was retried behind the caller's
        // back: one MPI_Comm_spawn, MPI_SUCCESS, at least one backoff
        // sleep worth of elapsed time.
        EXPECT_EQ(obs.rc[me], MPI_SUCCESS) << "rank " << me;
        EXPECT_GE(obs.elapsed[me], 0.004) << "rank " << me;
    }
    EXPECT_EQ(children.load(), 2);
    EXPECT_TRUE(world.epitaphs().empty());
}

// ---------------------------------------------------------------------------
// failure_ack / get_acked: after a death surfaces, the survivor can
// snapshot the failed membership as a group.
// ---------------------------------------------------------------------------

TEST(Recovery, FailureAckSnapshotsDeadMembers) {
    instr::Registry reg;
    World::Config cfg = recovery_cfg(Flavor::Lam);
    cfg.faults->kill_at_call(1, 4);
    World world(reg, cfg);
    Observed obs;
    world.register_program("app", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        int me = 0;
        r.MPI_Comm_rank(r.MPI_COMM_WORLD(), &me);
        // Before any failure: an ack'd snapshot is empty.
        Group acked = simmpi::MPI_GROUP_NULL;
        ASSERT_EQ(r.MPI_Comm_failure_ack(r.MPI_COMM_WORLD()), MPI_SUCCESS);
        ASSERT_EQ(r.MPI_Comm_get_acked(r.MPI_COMM_WORLD(), &acked), MPI_SUCCESS);
        int sz = -1;
        r.MPI_Group_size(acked, &sz);
        EXPECT_EQ(sz, 0);
        r.MPI_Group_free(&acked);
        int rc = MPI_SUCCESS;
        for (int i = 0; i < 50 && rc == MPI_SUCCESS; ++i) {
            int in = me, out = 0;
            rc = r.MPI_Allreduce(&in, &out, 1, MPI_INT, MPI_SUM, r.MPI_COMM_WORLD());
        }
        ASSERT_NE(rc, MPI_SUCCESS);
        ASSERT_EQ(r.MPI_Comm_failure_ack(r.MPI_COMM_WORLD()), MPI_SUCCESS);
        ASSERT_EQ(r.MPI_Comm_get_acked(r.MPI_COMM_WORLD(), &acked), MPI_SUCCESS);
        r.MPI_Group_size(acked, &sz);
        obs.record(me, sz, 0.0);
        r.MPI_Group_free(&acked);
        r.MPI_Finalize();
    });
    run_ranks(world, "app", 4);
    ASSERT_EQ(world.epitaphs().size(), 1u);
    for (int me : {0, 2, 3}) EXPECT_EQ(obs.rc[me], 1) << "rank " << me;
}

// ---------------------------------------------------------------------------
// The acceptance scenario: a 256-rank consultant session loses a rank
// mid-collective, the application revokes / agrees / shrinks and keeps
// computing on the survivors, and the tool reports Recovered with
// clean post-shrink experiments instead of a truncated search.
// ---------------------------------------------------------------------------

TEST(Recovery, ConsultantSessionRecoversAt256Ranks) {
    constexpr int kRanks = 256, kVictim = 5;
    simmpi::World::Config wcfg;  // fiber ranks: 256 threads would not fly
    wcfg.rank_engine = simmpi::RankEngine::Fiber;
    wcfg.wait_deadline_seconds = 2.0;
    wcfg.join_deadline_seconds = 120.0;
    wcfg.faults = std::make_shared<FaultPlan>();
    wcfg.faults->kill_at_call(kVictim, 10);
    core::Session s(Flavor::Lam, {}, wcfg);

    std::atomic<int> recovered_ranks{0};
    s.world().register_program("resilient", [&](Rank& r,
                                                const std::vector<std::string>&) {
        r.MPI_Init();
        int me = 0;
        r.MPI_Comm_rank(r.MPI_COMM_WORLD(), &me);
        Comm c = MPI_COMM_NULL;
        ASSERT_EQ(r.MPI_Comm_dup(r.MPI_COMM_WORLD(), &c), MPI_SUCCESS);
        int rc = MPI_SUCCESS;
        while (rc == MPI_SUCCESS) {
            int in = me, out = 0;
            rc = r.MPI_Allreduce(&in, &out, 1, MPI_INT, MPI_SUM, c);
        }
        // The ULFM recipe: revoke so every straggler unwedges, agree
        // on the failure, shrink, continue on the survivors' comm.
        r.MPI_Comm_revoke(c);
        int flag = 1;
        r.MPI_Comm_agree(c, &flag);
        Comm fresh = MPI_COMM_NULL;
        ASSERT_EQ(r.MPI_Comm_shrink(c, &fresh), MPI_SUCCESS);
        // Keep the survivors measurably busy long enough for the PC to
        // complete experiments over the post-loss hierarchy.  The loop
        // condition is agreed via the reduction itself so every member
        // executes the same number of collectives.
        const auto t0 = std::chrono::steady_clock::now();
        for (;;) {
            int cont = seconds_since(t0) < 1.0 ? 1 : 0, all = 0;
            if (r.MPI_Allreduce(&cont, &all, 1, MPI_INT, simmpi::MPI_MIN, fresh) !=
                    MPI_SUCCESS ||
                all == 0)
                break;
            simmpi::sched::sleep_for(std::chrono::milliseconds(2));
        }
        ++recovered_ranks;
        r.MPI_Finalize();
    });

    core::PerformanceConsultant::Options opts;
    opts.eval_interval = 0.06;
    opts.max_search_seconds = 20.0;
    const core::PCReport r = s.run_with_consultant("resilient", kRanks, opts);

    EXPECT_EQ(recovered_ranks.load(), kRanks - 1);
    EXPECT_EQ(r.outcome.status, core::RunOutcome::Status::Recovered);
    ASSERT_EQ(r.outcome.epitaphs.size(), 1u);
    EXPECT_EQ(r.outcome.epitaphs[0].global_rank, kVictim);
    EXPECT_TRUE(s.tool().hierarchy().get("/Process/p5").retired);

    // The search kept going over the survivors: at least one
    // experiment finished cleanly after the loss, and the condensed
    // report says so instead of (or in addition to) mourning.
    EXPECT_GT(r.experiments_run, 0);
    EXPECT_GE(r.post_loss_experiments, 1);
    const std::string rendered = core::PerformanceConsultant::render_condensed(r);
    EXPECT_NE(rendered.find("recovered search"), std::string::npos) << rendered;
}

}  // namespace
}  // namespace m2p
