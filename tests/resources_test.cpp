#include <gtest/gtest.h>

#include "core/resources.hpp"

namespace m2p::core {
namespace {

TEST(ResourceHierarchy, HasStandardRoots) {
    ResourceHierarchy rh;
    EXPECT_TRUE(rh.exists("/Code"));
    EXPECT_TRUE(rh.exists("/Machine"));
    EXPECT_TRUE(rh.exists("/Process"));
    EXPECT_TRUE(rh.exists("/SyncObject/Message"));
    EXPECT_TRUE(rh.exists("/SyncObject/Barrier"));
    EXPECT_TRUE(rh.exists("/SyncObject/Window"));
}

TEST(ResourceHierarchy, AddAndQueryChildren) {
    ResourceHierarchy rh;
    EXPECT_TRUE(rh.add("/Code/app", ResourceKind::Module));
    EXPECT_TRUE(rh.add("/Code/app/main", ResourceKind::Function));
    EXPECT_FALSE(rh.add("/Code/app", ResourceKind::Module));  // idempotent
    const auto kids = rh.children("/Code/app");
    ASSERT_EQ(kids.size(), 1u);
    EXPECT_EQ(kids[0], "/Code/app/main");
}

TEST(ResourceHierarchy, ChildrenDoesNotIncludeGrandchildren) {
    ResourceHierarchy rh;
    rh.add("/Code/app", ResourceKind::Module);
    rh.add("/Code/app/f", ResourceKind::Function);
    const auto kids = rh.children("/Code");
    ASSERT_EQ(kids.size(), 1u);
    EXPECT_EQ(kids[0], "/Code/app");
}

TEST(ResourceHierarchy, AddWithoutParentThrows) {
    ResourceHierarchy rh;
    EXPECT_THROW(rh.add("/Code/missing/f", ResourceKind::Function),
                 std::invalid_argument);
    EXPECT_THROW(rh.add("relative", ResourceKind::Function), std::invalid_argument);
}

TEST(ResourceHierarchy, RetireHidesFromUnretiredListing) {
    ResourceHierarchy rh;
    rh.add("/SyncObject/Window/0-0", ResourceKind::Window);
    rh.add("/SyncObject/Window/0-1", ResourceKind::Window);
    rh.retire("/SyncObject/Window/0-0");
    EXPECT_EQ(rh.children("/SyncObject/Window", true).size(), 2u);
    const auto live = rh.children("/SyncObject/Window", false);
    ASSERT_EQ(live.size(), 1u);
    EXPECT_EQ(live[0], "/SyncObject/Window/0-1");
}

TEST(ResourceHierarchy, DisplayNameShowsInRender) {
    ResourceHierarchy rh;
    rh.add("/SyncObject/Window/0-0", ResourceKind::Window);
    rh.set_display("/SyncObject/Window/0-0", "ParentChildWindow");
    const std::string out = rh.render("/SyncObject/Window");
    EXPECT_NE(out.find("0-0 \"ParentChildWindow\""), std::string::npos);
}

TEST(ResourceHierarchy, RenderMarksRetired) {
    ResourceHierarchy rh;
    rh.add("/SyncObject/Window/1-0", ResourceKind::Window);
    rh.retire("/SyncObject/Window/1-0");
    EXPECT_NE(rh.render("/SyncObject/Window").find("[retired]"), std::string::npos);
}

TEST(ResourceHierarchy, PathHelpers) {
    EXPECT_EQ(ResourceHierarchy::leaf("/a/b/c"), "c");
    EXPECT_EQ(ResourceHierarchy::parent("/a/b/c"), "/a/b");
    EXPECT_EQ(ResourceHierarchy::parent("/a"), "/");
}

TEST(Focus, WholeProgramAndToString) {
    Focus f;
    EXPECT_TRUE(f.is_whole_program());
    f.code = "/Code/app/main";
    EXPECT_FALSE(f.is_whole_program());
    EXPECT_NE(f.to_string().find("/Code/app/main"), std::string::npos);
}

}  // namespace
}  // namespace m2p::core
