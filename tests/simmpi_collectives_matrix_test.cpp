// Collective correctness matrix: every collective x {2, 5, 16, 64,
// 256} ranks x {Flat, Tree} algorithm x both flavors, plus
// intercommunicator error returns and the flat-config byte-metric
// exactness the paper-validation runs rely on.  The 5- and 16-rank
// points exercise the non-power-of-two folding and the deepest tree
// levels of the binomial / recursive-doubling algorithms; 64 and 256
// run on the fiber engine far past the old thread-per-rank wall, with
// ranks spread 8 per simulated node so the node-aware allreduce takes
// its hierarchical (shm cell + cross-node leader) path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/metrics.hpp"
#include "core/tool.hpp"
#include "simmpi/launcher.hpp"
#include "simmpi/rank.hpp"
#include "simmpi/world.hpp"

namespace m2p::simmpi {
namespace {

struct MatrixParam {
    Flavor flavor;
    CollAlgo algo;
};

std::string param_name(const ::testing::TestParamInfo<MatrixParam>& i) {
    std::string s = i.param.flavor == Flavor::Lam ? "Lam" : "Mpich";
    s += i.param.algo == CollAlgo::Flat ? "Flat" : "Tree";
    return s;
}

class CollectivesMatrixTest : public ::testing::TestWithParam<MatrixParam> {
protected:
    void run(int n, std::function<void(Rank&)> fn) {
        instr::Registry reg;
        World::Config cfg;
        cfg.flavor = GetParam().flavor;
        cfg.coll_algo = GetParam().algo;
        World world(reg, cfg);
        world.register_program("prog",
                               [fn](Rank& r, const std::vector<std::string>&) { fn(r); });
        LaunchPlan plan;
        for (int i = 0; i < n; ++i)
            plan.placements.push_back("node" + std::to_string(i / 8));
        launch(world, "prog", {}, plan);
        world.join_all();
    }

    // The rank counts every matrix cell runs at: the smallest comm, a
    // non-power-of-two size (recursive-doubling fold path), a 4-level
    // binomial tree, and two fiber-engine scale points.
    static const std::vector<int>& sizes() {
        static const std::vector<int> s = {2, 5, 16, 64, 256};
        return s;
    }
};

/// Roots to exercise for rooted collectives: every rank while that is
/// cheap, the edges and middle at scale (an all-roots sweep at 256
/// ranks would be quadratic in messages for no added coverage).
std::vector<int> roots_for(int size) {
    if (size <= 16) {
        std::vector<int> all(static_cast<std::size_t>(size));
        for (int i = 0; i < size; ++i) all[static_cast<std::size_t>(i)] = i;
        return all;
    }
    return {0, size / 2, size - 1};
}

TEST_P(CollectivesMatrixTest, BarrierSynchronizes) {
    for (int n : sizes()) {
        static std::atomic<int> arrived{0};
        arrived = 0;
        run(n, [n](Rank& r) {
            r.MPI_Init();
            const Comm w = r.MPI_COMM_WORLD();
            for (int round = 0; round < 10; ++round) {
                ++arrived;
                ASSERT_EQ(r.MPI_Barrier(w), MPI_SUCCESS);
                // Every rank incremented before anyone left the barrier.
                EXPECT_GE(arrived.load(), (round + 1) * n);
                ASSERT_EQ(r.MPI_Barrier(w), MPI_SUCCESS);
            }
            r.MPI_Finalize();
        });
    }
}

TEST_P(CollectivesMatrixTest, BcastFromEveryRoot) {
    for (int n : sizes()) {
        run(n, [](Rank& r) {
            r.MPI_Init();
            const Comm w = r.MPI_COMM_WORLD();
            int me = 0, size = 0;
            r.MPI_Comm_rank(w, &me);
            r.MPI_Comm_size(w, &size);
            for (const int root : roots_for(size)) {
                std::vector<std::int32_t> v(17, me == root ? 7000 + root : -1);
                ASSERT_EQ(r.MPI_Bcast(v.data(), 17, MPI_INT, root, w), MPI_SUCCESS);
                for (std::int32_t x : v) ASSERT_EQ(x, 7000 + root);
            }
            r.MPI_Finalize();
        });
    }
}

TEST_P(CollectivesMatrixTest, ReduceFromEveryRoot) {
    for (int n : sizes()) {
        run(n, [](Rank& r) {
            r.MPI_Init();
            const Comm w = r.MPI_COMM_WORLD();
            int me = 0, size = 0;
            r.MPI_Comm_rank(w, &me);
            r.MPI_Comm_size(w, &size);
            for (const int root : roots_for(size)) {
                const std::int32_t v[2] = {me + 1, 2 * (me + 1)};
                std::int32_t sum[2] = {0, 0};
                ASSERT_EQ(r.MPI_Reduce(v, sum, 2, MPI_INT, MPI_SUM, root, w),
                          MPI_SUCCESS);
                std::int32_t mx = 0;
                const std::int32_t mine = me * 3;
                ASSERT_EQ(r.MPI_Reduce(&mine, &mx, 1, MPI_INT, MPI_MAX, root, w),
                          MPI_SUCCESS);
                if (me == root) {
                    EXPECT_EQ(sum[0], size * (size + 1) / 2);
                    EXPECT_EQ(sum[1], size * (size + 1));
                    EXPECT_EQ(mx, (size - 1) * 3);
                }
            }
            r.MPI_Finalize();
        });
    }
}

TEST_P(CollectivesMatrixTest, AllreduceSumMaxMinProd) {
    for (int n : sizes()) {
        run(n, [](Rank& r) {
            r.MPI_Init();
            const Comm w = r.MPI_COMM_WORLD();
            int me = 0, size = 0;
            r.MPI_Comm_rank(w, &me);
            r.MPI_Comm_size(w, &size);
            std::vector<double> v(9, me + 1.0);
            std::vector<double> sum(9), mx(9), mn(9);
            ASSERT_EQ(r.MPI_Allreduce(v.data(), sum.data(), 9, MPI_DOUBLE, MPI_SUM, w),
                      MPI_SUCCESS);
            ASSERT_EQ(r.MPI_Allreduce(v.data(), mx.data(), 9, MPI_DOUBLE, MPI_MAX, w),
                      MPI_SUCCESS);
            ASSERT_EQ(r.MPI_Allreduce(v.data(), mn.data(), 9, MPI_DOUBLE, MPI_MIN, w),
                      MPI_SUCCESS);
            for (int i = 0; i < 9; ++i) {
                EXPECT_DOUBLE_EQ(sum[i], size * (size + 1) / 2.0);
                EXPECT_DOUBLE_EQ(mx[i], size);
                EXPECT_DOUBLE_EQ(mn[i], 1.0);
            }
            r.MPI_Finalize();
        });
    }
}

TEST_P(CollectivesMatrixTest, GatherFromEveryRoot) {
    for (int n : sizes()) {
        run(n, [](Rank& r) {
            r.MPI_Init();
            const Comm w = r.MPI_COMM_WORLD();
            int me = 0, size = 0;
            r.MPI_Comm_rank(w, &me);
            r.MPI_Comm_size(w, &size);
            for (const int root : roots_for(size)) {
                const std::int32_t mine[2] = {100 * me, 100 * me + 1};
                std::vector<std::int32_t> all(static_cast<std::size_t>(2 * size), -1);
                ASSERT_EQ(r.MPI_Gather(mine, 2, MPI_INT, all.data(), 2, MPI_INT, root, w),
                          MPI_SUCCESS);
                if (me == root) {
                    for (int src = 0; src < size; ++src) {
                        ASSERT_EQ(all[2 * src], 100 * src);
                        ASSERT_EQ(all[2 * src + 1], 100 * src + 1);
                    }
                }
            }
            r.MPI_Finalize();
        });
    }
}

TEST_P(CollectivesMatrixTest, ScatterFromEveryRoot) {
    for (int n : sizes()) {
        run(n, [](Rank& r) {
            r.MPI_Init();
            const Comm w = r.MPI_COMM_WORLD();
            int me = 0, size = 0;
            r.MPI_Comm_rank(w, &me);
            r.MPI_Comm_size(w, &size);
            for (const int root : roots_for(size)) {
                std::vector<std::int32_t> all;
                if (me == root)
                    for (int dst = 0; dst < size; ++dst) {
                        all.push_back(10 * dst);
                        all.push_back(10 * dst + 1);
                    }
                std::int32_t mine[2] = {-1, -1};
                ASSERT_EQ(r.MPI_Scatter(all.data(), 2, MPI_INT, mine, 2, MPI_INT, root, w),
                          MPI_SUCCESS);
                ASSERT_EQ(mine[0], 10 * me);
                ASSERT_EQ(mine[1], 10 * me + 1);
            }
            r.MPI_Finalize();
        });
    }
}

TEST_P(CollectivesMatrixTest, AllgatherEveryRankSeesAll) {
    for (int n : sizes()) {
        run(n, [](Rank& r) {
            r.MPI_Init();
            const Comm w = r.MPI_COMM_WORLD();
            int me = 0, size = 0;
            r.MPI_Comm_rank(w, &me);
            r.MPI_Comm_size(w, &size);
            const std::int32_t mine[3] = {me, me * me, -me};
            std::vector<std::int32_t> all(static_cast<std::size_t>(3 * size), -777);
            ASSERT_EQ(r.MPI_Allgather(mine, 3, MPI_INT, all.data(), 3, MPI_INT, w),
                      MPI_SUCCESS);
            for (int src = 0; src < size; ++src) {
                ASSERT_EQ(all[3 * src], src);
                ASSERT_EQ(all[3 * src + 1], src * src);
                ASSERT_EQ(all[3 * src + 2], -src);
            }
            r.MPI_Finalize();
        });
    }
}

TEST_P(CollectivesMatrixTest, MixedCollectiveSequenceStaysOrdered) {
    // Back-to-back different collectives must not cross tags: the
    // reserved-tag allocator hands each call its own window.
    for (int n : sizes()) {
        run(n, [](Rank& r) {
            r.MPI_Init();
            const Comm w = r.MPI_COMM_WORLD();
            int me = 0, size = 0;
            r.MPI_Comm_rank(w, &me);
            r.MPI_Comm_size(w, &size);
            for (int round = 0; round < 5; ++round) {
                int v = me == 0 ? round : -1;
                ASSERT_EQ(r.MPI_Bcast(&v, 1, MPI_INT, 0, w), MPI_SUCCESS);
                ASSERT_EQ(v, round);
                int sum = 0;
                ASSERT_EQ(r.MPI_Allreduce(&me, &sum, 1, MPI_INT, MPI_SUM, w),
                          MPI_SUCCESS);
                ASSERT_EQ(sum, size * (size - 1) / 2);
                std::vector<std::int32_t> all(static_cast<std::size_t>(size));
                ASSERT_EQ(r.MPI_Allgather(&me, 1, MPI_INT, all.data(), 1, MPI_INT, w),
                          MPI_SUCCESS);
                for (int src = 0; src < size; ++src) ASSERT_EQ(all[src], src);
            }
            r.MPI_Finalize();
        });
    }
}

TEST_P(CollectivesMatrixTest, IntercommCollectivesReturnErrComm) {
    // Collectives are defined on intracommunicators only in this
    // engine; an intercomm must be rejected, not deadlock -- under
    // either algorithm family.  The intercomm is built directly
    // through the World API because the Mpich flavor
    // (paper-accurately) has no MPI_Comm_spawn.
    instr::Registry reg;
    World::Config cfg;
    cfg.flavor = GetParam().flavor;
    cfg.coll_algo = GetParam().algo;
    World world(reg, cfg);
    const Comm inter = world.create_comm({0}, {1}, /*is_inter=*/true);
    world.register_program("prog", [inter](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        int v = 0, out = 0;
        EXPECT_EQ(r.MPI_Barrier(inter), MPI_ERR_COMM);
        EXPECT_EQ(r.MPI_Bcast(&v, 1, MPI_INT, 0, inter), MPI_ERR_COMM);
        EXPECT_EQ(r.MPI_Reduce(&v, &out, 1, MPI_INT, MPI_SUM, 0, inter), MPI_ERR_COMM);
        EXPECT_EQ(r.MPI_Allreduce(&v, &out, 1, MPI_INT, MPI_SUM, inter), MPI_ERR_COMM);
        EXPECT_EQ(r.MPI_Gather(&v, 1, MPI_INT, &out, 1, MPI_INT, 0, inter), MPI_ERR_COMM);
        EXPECT_EQ(r.MPI_Scatter(&v, 1, MPI_INT, &out, 1, MPI_INT, 0, inter),
                  MPI_ERR_COMM);
        EXPECT_EQ(r.MPI_Allgather(&v, 1, MPI_INT, &out, 1, MPI_INT, inter), MPI_ERR_COMM);
        r.MPI_Finalize();
    });
    LaunchPlan plan;
    plan.placements = {"node0", "node0"};
    launch(world, "prog", {}, plan);
    world.join_all();
}

TEST_P(CollectivesMatrixTest, SpawnedIntercommRejectedLamOnly) {
    // Same rejection via a real MPI_Comm_spawn intercomm; the Lam
    // flavor is the one with dynamic process creation.
    if (GetParam().flavor != Flavor::Lam) GTEST_SKIP() << "spawn is Lam-only";
    instr::Registry reg;
    World::Config cfg;
    cfg.flavor = GetParam().flavor;
    cfg.coll_algo = GetParam().algo;
    World world(reg, cfg);
    world.register_program("child", [](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        Comm parent = MPI_COMM_NULL;
        ASSERT_EQ(r.MPI_Comm_get_parent(&parent), MPI_SUCCESS);
        int v = 0;
        EXPECT_EQ(r.MPI_Barrier(parent), MPI_ERR_COMM);
        EXPECT_EQ(r.MPI_Bcast(&v, 1, MPI_INT, 0, parent), MPI_ERR_COMM);
        r.MPI_Finalize();
    });
    world.register_program("parent", [](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        Comm inter = MPI_COMM_NULL;
        std::vector<int> errcodes;
        ASSERT_EQ(r.MPI_Comm_spawn("child", {}, 2, MPI_INFO_NULL, 0, r.MPI_COMM_WORLD(),
                                   &inter, &errcodes),
                  MPI_SUCCESS);
        int v = 0, out = 0;
        EXPECT_EQ(r.MPI_Barrier(inter), MPI_ERR_COMM);
        EXPECT_EQ(r.MPI_Allreduce(&v, &out, 1, MPI_INT, MPI_SUM, inter), MPI_ERR_COMM);
        EXPECT_EQ(r.MPI_Gather(&v, 1, MPI_INT, &out, 1, MPI_INT, 0, inter), MPI_ERR_COMM);
        r.MPI_Finalize();
    });
    LaunchPlan plan;
    plan.placements = {"node0"};
    launch(world, "parent", {}, plan);
    world.join_all();
}

TEST_P(CollectivesMatrixTest, GatherScatterErrorsOnBadArguments) {
    run(2, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        std::int32_t v = 0;
        std::int32_t out[2] = {0, 0};
        EXPECT_EQ(r.MPI_Gather(&v, 1, MPI_INT, out, 1, MPI_INT, 9, w), MPI_ERR_RANK);
        EXPECT_EQ(r.MPI_Gather(&v, -1, MPI_INT, out, 1, MPI_INT, 0, w), MPI_ERR_COUNT);
        EXPECT_EQ(r.MPI_Scatter(out, 1, MPI_INT, &v, 1, MPI_DATATYPE_NULL, 0, w),
                  MPI_ERR_TYPE);
        EXPECT_EQ(r.MPI_Allgather(&v, 1, MPI_INT, out, -1, MPI_INT, w), MPI_ERR_COUNT);
        EXPECT_EQ(r.MPI_Allgather(&v, 1, MPI_INT, out, 1, MPI_INT, 999), MPI_ERR_COMM);
        r.MPI_Finalize();
    });
}

INSTANTIATE_TEST_SUITE_P(Matrix, CollectivesMatrixTest,
                         ::testing::Values(MatrixParam{Flavor::Lam, CollAlgo::Flat},
                                           MatrixParam{Flavor::Lam, CollAlgo::Tree},
                                           MatrixParam{Flavor::Mpich, CollAlgo::Flat},
                                           MatrixParam{Flavor::Mpich, CollAlgo::Tree}),
                         param_name);

// ---------------------------------------------------------------------------
// Tool-facing byte metrics: exact under the flat (paper-validation)
// config, and unperturbed by the collective algorithm choice, because
// the MDL counters instrument the MPI pt2pt entry points, not the
// transport internals.
// ---------------------------------------------------------------------------

class ByteMetricsTest : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(ByteMetricsTest, Pt2ptByteCountersStayExact) {
    instr::Registry reg;
    World::Config cfg;
    cfg.flavor = GetParam().flavor;
    cfg.coll_algo = GetParam().algo;
    World world(reg, cfg);
    core::PerfTool tool(world, core::PerfTool::Options{});
    auto sent = tool.metrics().request("msg_bytes_sent", core::Focus{});
    auto recv = tool.metrics().request("msg_bytes_recv", core::Focus{});
    ASSERT_NE(sent, nullptr);
    ASSERT_NE(recv, nullptr);

    constexpr int kMsgs = 40, kBytes = 24;
    world.register_program("prog", [](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0, size = 0;
        r.MPI_Comm_rank(w, &me);
        r.MPI_Comm_size(w, &size);
        std::vector<char> buf(kBytes, 'b');
        // Interleave collectives with the counted pt2pt traffic: the
        // internal collective messages must not leak into the MPI-level
        // byte counters under either algorithm.
        for (int i = 0; i < kMsgs; ++i) {
            if (me == 0)
                r.MPI_Send(buf.data(), kBytes, MPI_BYTE, 1, 5, w);
            else if (me == 1)
                r.MPI_Recv(buf.data(), kBytes, MPI_BYTE, 0, 5, w, nullptr);
            if (i % 8 == 0) {
                int sum = 0;
                r.MPI_Allreduce(&me, &sum, 1, MPI_INT, MPI_SUM, w);
                int v = me == 0 ? i : -1;
                r.MPI_Bcast(&v, 1, MPI_INT, 0, w);
            }
        }
        r.MPI_Finalize();
    });
    core::run_app_async(tool, "prog", {}, 4);
    world.join_all();
    tool.flush();

    EXPECT_DOUBLE_EQ(sent->total(), static_cast<double>(kMsgs) * kBytes);
    EXPECT_DOUBLE_EQ(recv->total(), static_cast<double>(kMsgs) * kBytes);
    tool.metrics().release(recv);
    tool.metrics().release(sent);
}

INSTANTIATE_TEST_SUITE_P(Matrix, ByteMetricsTest,
                         ::testing::Values(MatrixParam{Flavor::Lam, CollAlgo::Flat},
                                           MatrixParam{Flavor::Lam, CollAlgo::Tree},
                                           MatrixParam{Flavor::Mpich, CollAlgo::Flat},
                                           MatrixParam{Flavor::Mpich, CollAlgo::Tree}),
                         param_name);

}  // namespace
}  // namespace m2p::simmpi
