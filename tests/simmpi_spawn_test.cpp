#include <gtest/gtest.h>

#include <atomic>

#include "simmpi/launcher.hpp"
#include "simmpi/rank.hpp"
#include "simmpi/world.hpp"

namespace m2p::simmpi {
namespace {

struct SpawnFixture {
    instr::Registry reg;
    World world;
    explicit SpawnFixture(Flavor f = Flavor::Lam, bool mpir = false)
        : world(reg, [&] {
              World::Config c;
              c.flavor = f;
              c.mpir_enabled = mpir;
              return c;
          }()) {}

    void launch_parents(int n, const std::string& prog) {
        LaunchPlan plan;
        for (int i = 0; i < n; ++i) plan.placements.push_back("node" + std::to_string(i % 2));
        launch(world, prog, {}, plan);
        world.join_all();
    }
};

TEST(Spawn, ChildrenRunAndGetParentIntercomm) {
    SpawnFixture fx;
    std::atomic<int> children_ok{0};
    fx.world.register_program("child", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        Comm parent = MPI_COMM_NULL;
        ASSERT_EQ(r.MPI_Comm_get_parent(&parent), MPI_SUCCESS);
        ASSERT_NE(parent, MPI_COMM_NULL);
        int n = 0, remote = 0, me = -1;
        r.MPI_Comm_size(parent, &n);
        r.MPI_Comm_remote_size(parent, &remote);
        r.MPI_Comm_rank(r.MPI_COMM_WORLD(), &me);
        EXPECT_EQ(remote, 2);  // two parents
        EXPECT_GE(me, 0);
        ++children_ok;
        r.MPI_Finalize();
    });
    fx.world.register_program("parent", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        Comm inter = MPI_COMM_NULL;
        std::vector<int> errcodes;
        ASSERT_EQ(r.MPI_Comm_spawn("child", {}, 3, MPI_INFO_NULL, 0,
                                   r.MPI_COMM_WORLD(), &inter, &errcodes),
                  MPI_SUCCESS);
        ASSERT_NE(inter, MPI_COMM_NULL);
        ASSERT_EQ(errcodes.size(), 3u);
        for (int e : errcodes) EXPECT_EQ(e, MPI_SUCCESS);
        int remote = 0;
        r.MPI_Comm_remote_size(inter, &remote);
        EXPECT_EQ(remote, 3);
        r.MPI_Finalize();
    });
    fx.launch_parents(2, "parent");
    EXPECT_EQ(children_ok.load(), 3);
    EXPECT_EQ(fx.world.proc_count(), 5u);  // 2 parents + 3 children
}

TEST(Spawn, MessagesFlowOverIntercomm) {
    SpawnFixture fx;
    fx.world.register_program("child", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        Comm parent = MPI_COMM_NULL;
        r.MPI_Comm_get_parent(&parent);
        int me = 0;
        r.MPI_Comm_rank(r.MPI_COMM_WORLD(), &me);
        const int v = 500 + me;
        r.MPI_Send(&v, 1, MPI_INT, 0, 9, parent);  // to parent rank 0
        int reply = 0;
        r.MPI_Recv(&reply, 1, MPI_INT, 0, 10, parent, nullptr);
        EXPECT_EQ(reply, 1000 + me);
        r.MPI_Finalize();
    });
    fx.world.register_program("parent", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        Comm inter = MPI_COMM_NULL;
        std::vector<int> errcodes;
        r.MPI_Comm_spawn("child", {}, 2, MPI_INFO_NULL, 0, r.MPI_COMM_WORLD(), &inter,
                         &errcodes);
        int me = 0;
        r.MPI_Comm_rank(r.MPI_COMM_WORLD(), &me);
        if (me == 0) {
            for (int i = 0; i < 2; ++i) {
                int v = 0;
                Status st;
                r.MPI_Recv(&v, 1, MPI_INT, MPI_ANY_SOURCE, 9, inter, &st);
                EXPECT_EQ(v, 500 + st.MPI_SOURCE);
                const int reply = 1000 + st.MPI_SOURCE;
                r.MPI_Send(&reply, 1, MPI_INT, st.MPI_SOURCE, 10, inter);
            }
        }
        r.MPI_Finalize();
    });
    fx.launch_parents(1, "parent");
}

TEST(Spawn, IntercommMergeBuildsIntracomm) {
    SpawnFixture fx;
    std::atomic<int> checked{0};
    auto body = [&](Rank& r, Comm inter, bool is_parent) {
        Comm merged = MPI_COMM_NULL;
        ASSERT_EQ(r.MPI_Intercomm_merge(inter, /*high=*/!is_parent, &merged),
                  MPI_SUCCESS);
        int n = 0, me = -1;
        r.MPI_Comm_size(merged, &n);
        r.MPI_Comm_rank(merged, &me);
        EXPECT_EQ(n, 3);  // 1 parent + 2 children
        // Parents come first (they passed high=false).
        if (is_parent) EXPECT_EQ(me, 0);
        else EXPECT_GT(me, 0);
        // Everyone can barrier on the merged comm.
        r.MPI_Barrier(merged);
        int sum = 0;
        r.MPI_Allreduce(&me, &sum, 1, MPI_INT, MPI_SUM, merged);
        EXPECT_EQ(sum, 3);
        ++checked;
    };
    fx.world.register_program("child", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        Comm parent = MPI_COMM_NULL;
        r.MPI_Comm_get_parent(&parent);
        body(r, parent, false);
        r.MPI_Finalize();
    });
    fx.world.register_program("parent", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        Comm inter = MPI_COMM_NULL;
        std::vector<int> errcodes;
        r.MPI_Comm_spawn("child", {}, 2, MPI_INFO_NULL, 0, r.MPI_COMM_WORLD(), &inter,
                         &errcodes);
        body(r, inter, true);
        r.MPI_Finalize();
    });
    fx.launch_parents(1, "parent");
    EXPECT_EQ(checked.load(), 3);
}

TEST(Spawn, MpichFlavorRejectsSpawn) {
    // MPICH2 0.96p2 beta did not support dynamic process creation
    // (paper 5.2.2): the paper's spawn results are LAM-only.
    SpawnFixture fx(Flavor::Mpich);
    fx.world.register_program("parent", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        Comm inter = MPI_COMM_NULL;
        std::vector<int> errcodes;
        EXPECT_EQ(r.MPI_Comm_spawn("parent", {}, 2, MPI_INFO_NULL, 0,
                                   r.MPI_COMM_WORLD(), &inter, &errcodes),
                  MPI_ERR_SPAWN);
        ASSERT_EQ(errcodes.size(), 2u);
        EXPECT_EQ(errcodes[0], MPI_ERR_SPAWN);
        r.MPI_Finalize();
    });
    fx.launch_parents(1, "parent");
    EXPECT_EQ(fx.world.proc_count(), 1u);
}

TEST(Spawn, UnknownCommandFails) {
    SpawnFixture fx;
    fx.world.register_program("parent", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        Comm inter = MPI_COMM_NULL;
        std::vector<int> errcodes;
        EXPECT_EQ(r.MPI_Comm_spawn("no-such-binary", {}, 1, MPI_INFO_NULL, 0,
                                   r.MPI_COMM_WORLD(), &inter, &errcodes),
                  MPI_ERR_SPAWN);
        r.MPI_Finalize();
    });
    fx.launch_parents(1, "parent");
}

TEST(Spawn, LamSpawnFileInfoKeyOverridesCommand) {
    // LAM's lam_spawn_file info key points at an application schema
    // that decides what/where to start (paper 4.2.2).
    SpawnFixture fx;
    std::atomic<int> alt_ran{0};
    fx.world.register_program("alt-child", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        ++alt_ran;
        r.MPI_Finalize();
    });
    fx.world.register_program("parent", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        Info info = MPI_INFO_NULL;
        r.MPI_Info_create(&info);
        r.MPI_Info_set(info, "lam_spawn_file", "alt-child");
        Comm inter = MPI_COMM_NULL;
        std::vector<int> errcodes;
        ASSERT_EQ(r.MPI_Comm_spawn("ignored-command", {}, 2, info, 0,
                                   r.MPI_COMM_WORLD(), &inter, &errcodes),
                  MPI_SUCCESS);
        r.MPI_Info_free(&info);
        r.MPI_Finalize();
    });
    fx.launch_parents(1, "parent");
    EXPECT_EQ(alt_ran.load(), 2);
}

TEST(Spawn, MpirProctableOnlyWhenEnabled) {
    for (const bool mpir : {false, true}) {
        SpawnFixture fx(Flavor::Lam, mpir);
        fx.world.register_program("child", [](Rank& r, const std::vector<std::string>&) {
            r.MPI_Init();
            r.MPI_Finalize();
        });
        fx.world.register_program("parent", [&](Rank& r, const std::vector<std::string>&) {
            r.MPI_Init();
            Comm inter = MPI_COMM_NULL;
            std::vector<int> errcodes;
            r.MPI_Comm_spawn("child", {}, 2, MPI_INFO_NULL, 0, r.MPI_COMM_WORLD(),
                             &inter, &errcodes);
            r.MPI_Finalize();
        });
        fx.launch_parents(1, "parent");
        const auto table = fx.world.mpir_proctable();
        if (mpir) {
            ASSERT_EQ(table.size(), 3u);
            EXPECT_EQ(table[1].executable_name, "child");
        } else {
            // LAM/MPICH2 did not support the MPIR dynamic-process
            // interface at the time (paper 4.2.2).
            EXPECT_TRUE(table.empty());
        }
    }
}

TEST(Spawn, SpawnedProcsPlacedOverNodePool) {
    SpawnFixture fx;
    fx.world.register_program("child", [](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        r.MPI_Finalize();
    });
    fx.world.register_program("parent", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        Comm inter = MPI_COMM_NULL;
        std::vector<int> errcodes;
        r.MPI_Comm_spawn("child", {}, 4, MPI_INFO_NULL, 0, r.MPI_COMM_WORLD(), &inter,
                         &errcodes);
        r.MPI_Finalize();
    });
    fx.launch_parents(2, "parent");
    // Children round-robin over the launch nodes.
    std::set<std::string> nodes;
    for (std::size_t g = 2; g < fx.world.proc_count(); ++g)
        nodes.insert(fx.world.proc(static_cast<int>(g)).node);
    EXPECT_EQ(nodes.size(), 2u);
}

}  // namespace
}  // namespace m2p::simmpi
