// Gather/Scatter/Allgather, MPI_Ssend, and shared-file-pointer I/O.
#include <gtest/gtest.h>

#include "simmpi/launcher.hpp"
#include "simmpi/rank.hpp"
#include "simmpi/sched.hpp"
#include <chrono>
#include <thread>

#include "util/clock.hpp"

namespace m2p::simmpi {
namespace {

class GsTest : public ::testing::TestWithParam<Flavor> {
protected:
    void run(int n, std::function<void(Rank&)> fn) {
        instr::Registry reg;
        World::Config cfg;
        cfg.flavor = GetParam();
        World world(reg, cfg);
        world.register_program("prog",
                               [fn](Rank& r, const std::vector<std::string>&) { fn(r); });
        LaunchPlan plan;
        for (int i = 0; i < n; ++i) plan.placements.push_back("node0");
        launch(world, "prog", {}, plan);
        world.join_all();
    }
};

TEST_P(GsTest, GatherAssemblesBlocksInRankOrder) {
    run(4, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0, n = 0;
        r.MPI_Comm_rank(w, &me);
        r.MPI_Comm_size(w, &n);
        const std::int32_t mine[2] = {10 * me, 10 * me + 1};
        std::vector<std::int32_t> all(static_cast<std::size_t>(2 * n), -1);
        for (int root = 0; root < n; ++root) {
            ASSERT_EQ(r.MPI_Gather(mine, 2, MPI_INT, all.data(), 2, MPI_INT, root, w),
                      MPI_SUCCESS);
            if (me == root)
                for (int k = 0; k < n; ++k) {
                    EXPECT_EQ(all[static_cast<std::size_t>(2 * k)], 10 * k);
                    EXPECT_EQ(all[static_cast<std::size_t>(2 * k + 1)], 10 * k + 1);
                }
        }
        r.MPI_Finalize();
    });
}

TEST_P(GsTest, ScatterDistributesBlocks) {
    run(3, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0, n = 0;
        r.MPI_Comm_rank(w, &me);
        r.MPI_Comm_size(w, &n);
        std::vector<double> src;
        if (me == 1)
            for (int k = 0; k < n; ++k) src.push_back(100.0 + k);
        double mine = -1;
        ASSERT_EQ(r.MPI_Scatter(src.data(), 1, MPI_DOUBLE, &mine, 1, MPI_DOUBLE, 1, w),
                  MPI_SUCCESS);
        EXPECT_DOUBLE_EQ(mine, 100.0 + me);
        r.MPI_Finalize();
    });
}

TEST_P(GsTest, AllgatherGivesEveryoneTheFullVector) {
    run(5, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0, n = 0;
        r.MPI_Comm_rank(w, &me);
        r.MPI_Comm_size(w, &n);
        const std::int64_t mine = me * me;
        std::vector<std::int64_t> all(static_cast<std::size_t>(n), -1);
        ASSERT_EQ(r.MPI_Allgather(&mine, 1, MPI_LONG, all.data(), 1, MPI_LONG, w),
                  MPI_SUCCESS);
        for (int k = 0; k < n; ++k)
            EXPECT_EQ(all[static_cast<std::size_t>(k)], static_cast<std::int64_t>(k) * k);
        r.MPI_Finalize();
    });
}

TEST_P(GsTest, GatherScatterErrorPaths) {
    run(2, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        std::int32_t v = 0, out[4];
        EXPECT_EQ(r.MPI_Gather(&v, 1, MPI_INT, out, 1, MPI_INT, 9, w), MPI_ERR_RANK);
        EXPECT_EQ(r.MPI_Gather(&v, -1, MPI_INT, out, 1, MPI_INT, 0, w), MPI_ERR_COUNT);
        // Mismatched block sizes (4 vs 8 bytes).
        EXPECT_EQ(r.MPI_Gather(&v, 1, MPI_INT, out, 1, MPI_LONG, 0, w), MPI_ERR_ARG);
        EXPECT_EQ(r.MPI_Allgather(&v, 1, MPI_INT, out, 1, MPI_INT, 999), MPI_ERR_COMM);
        r.MPI_Finalize();
    });
}

INSTANTIATE_TEST_SUITE_P(Flavors, GsTest,
                         ::testing::Values(Flavor::Lam, Flavor::Mpich),
                         [](const ::testing::TestParamInfo<Flavor>& i) {
                             return i.param == Flavor::Lam ? "Lam" : "Mpich";
                         });

TEST(Ssend, AlwaysRendezvousEvenForTinyMessages) {
    instr::Registry reg;
    World world(reg, {});
    std::atomic<bool> receiver_started{false};
    std::atomic<double> send_elapsed{0.0};
    world.register_program("prog", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        char b = 's';
        if (me == 0) {
            const double t0 = util::wall_seconds();
            // MPI_Ssend must block until the receive starts -- ~60ms.
            ASSERT_EQ(r.MPI_Ssend(&b, 1, MPI_BYTE, 1, 0, w), MPI_SUCCESS);
            send_elapsed = util::wall_seconds() - t0;
            EXPECT_TRUE(receiver_started.load());
        } else {
            simmpi::sched::sleep_for(std::chrono::milliseconds(60));
            receiver_started = true;
            r.MPI_Recv(&b, 1, MPI_BYTE, 0, 0, w, nullptr);
        }
        r.MPI_Finalize();
    });
    LaunchPlan plan;
    plan.placements = {"n", "n"};
    launch(world, "prog", {}, plan);
    world.join_all();
    EXPECT_GT(send_elapsed.load(), 0.05);
}

TEST(SharedFilePointer, WritersClaimDisjointRegions) {
    instr::Registry reg;
    World::Config cfg;
    cfg.file_latency_seconds = 1e-6;
    cfg.file_bandwidth_bytes_per_second = 10e9;
    World world(reg, cfg);
    constexpr int kEach = 20;
    world.register_program("prog", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        File fh = MPI_FILE_NULL;
        r.MPI_File_open(w, "shared.dat", MPI_MODE_CREATE | MPI_MODE_RDWR,
                        MPI_INFO_NULL, &fh);
        const char mark = static_cast<char>('A' + me);
        std::vector<char> rec(8, mark);
        Status st;
        for (int i = 0; i < kEach; ++i)
            ASSERT_EQ(r.MPI_File_write_shared(fh, rec.data(), 8, MPI_BYTE, &st),
                      MPI_SUCCESS);
        r.MPI_File_close(&fh);
        r.MPI_Finalize();
    });
    LaunchPlan plan;
    plan.placements = {"n", "n", "n"};
    launch(world, "prog", {}, plan);
    world.join_all();
    // Every record landed whole (no interleaving within a record) and
    // the totals per writer are exact.
    auto store = world.fs_lookup("shared.dat", false);
    ASSERT_NE(store, nullptr);
    ASSERT_EQ(store->data.size(), 3u * kEach * 8u);
    std::map<char, int> counts;
    for (std::size_t rec_at = 0; rec_at < store->data.size(); rec_at += 8) {
        const char first = static_cast<char>(store->data[rec_at]);
        for (std::size_t k = 1; k < 8; ++k)
            ASSERT_EQ(static_cast<char>(store->data[rec_at + k]), first);
        counts[first]++;
    }
    EXPECT_EQ(counts['A'], kEach);
    EXPECT_EQ(counts['B'], kEach);
    EXPECT_EQ(counts['C'], kEach);
}

TEST(SharedFilePointer, ReadersConsumeStreamWithoutOverlap) {
    instr::Registry reg;
    World::Config cfg;
    cfg.file_latency_seconds = 1e-6;
    cfg.file_bandwidth_bytes_per_second = 10e9;
    World world(reg, cfg);
    std::atomic<long long> sum{0};
    world.register_program("prog", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        File fh = MPI_FILE_NULL;
        r.MPI_File_open(w, "stream.dat", MPI_MODE_CREATE | MPI_MODE_RDWR,
                        MPI_INFO_NULL, &fh);
        if (me == 0) {
            std::vector<std::int32_t> vals(40);
            for (int i = 0; i < 40; ++i) vals[static_cast<std::size_t>(i)] = i + 1;
            Status st;
            r.MPI_File_write_at(fh, 0, vals.data(), 40, MPI_INT, &st);
        }
        r.MPI_Barrier(w);
        // Both ranks drain the shared pointer: each element read once.
        Status st;
        for (;;) {
            std::int32_t v = 0;
            r.MPI_File_read_shared(fh, &v, 1, MPI_INT, &st);
            if (st.count_bytes < 4) break;
            sum += v;
        }
        r.MPI_File_close(&fh);
        r.MPI_Finalize();
    });
    LaunchPlan plan;
    plan.placements = {"n", "n"};
    launch(world, "prog", {}, plan);
    world.join_all();
    EXPECT_EQ(sum.load(), 40LL * 41 / 2);  // each of 1..40 exactly once
}

}  // namespace
}  // namespace m2p::simmpi
