#include <gtest/gtest.h>

#include <cmath>

#include "util/clock.hpp"
#include "util/stats.hpp"
#include "util/text_table.hpp"

namespace m2p::util {
namespace {

TEST(Clock, WallClockMonotonic) {
    const double a = wall_seconds();
    const double b = wall_seconds();
    EXPECT_GE(b, a);
}

TEST(Clock, ThreadCpuAdvancesUnderLoad) {
    const double a = thread_cpu_seconds();
    burn_thread_cpu(0.01);
    const double b = thread_cpu_seconds();
    EXPECT_GE(b - a, 0.009);
}

TEST(Clock, BurnThreadCpuBurnsRoughlyRequestedAmount) {
    const double a = thread_cpu_seconds();
    burn_thread_cpu(0.02);
    EXPECT_NEAR(thread_cpu_seconds() - a, 0.02, 0.015);
}

TEST(Clock, SystemTimeBurnAccruesKernelTime) {
    const double s0 = process_system_seconds();
    burn_system_time(0.05);
    // Most of the elapsed time should be kernel time, not user time.
    EXPECT_GT(process_system_seconds() - s0, 0.005);
}

TEST(Stats, SummaryBasics) {
    const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
    EXPECT_EQ(s.n, 4u);
    EXPECT_DOUBLE_EQ(s.mean, 2.5);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 4.0);
    EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, EmptySummaryIsZero) {
    const Summary s = summarize({});
    EXPECT_EQ(s.n, 0u);
    EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, CiExcludesZeroForClearlyNonzeroMean) {
    const ConfidenceInterval ci = mean_ci95({9.9, 10.1, 10.0, 9.8, 10.2});
    EXPECT_TRUE(ci.excludes_zero());
    EXPECT_LT(ci.lo, 10.0);
    EXPECT_GT(ci.hi, 10.0);
}

TEST(Stats, CiIncludesZeroForNoise) {
    const ConfidenceInterval ci = mean_ci95({-1.0, 1.0, -0.5, 0.5, 0.1, -0.1});
    EXPECT_FALSE(ci.excludes_zero());
}

TEST(Stats, WelchDetectsSeparatedSamples) {
    const WelchResult r =
        welch_t_test({10.0, 10.1, 9.9, 10.05}, {20.0, 20.1, 19.9, 20.05});
    EXPECT_TRUE(r.significant_95);
    EXPECT_NEAR(r.relative_difference, 0.5, 0.02);
}

TEST(Stats, WelchAcceptsOverlappingSamples) {
    const WelchResult r =
        welch_t_test({10.0, 11.0, 9.0, 10.5, 9.5}, {10.2, 10.8, 9.2, 10.4, 9.6});
    EXPECT_FALSE(r.significant_95);
}

TEST(Stats, TCriticalMatchesTable) {
    EXPECT_NEAR(t_critical_95(1), 12.706, 1e-9);
    EXPECT_NEAR(t_critical_95(10), 2.228, 1e-9);
    EXPECT_NEAR(t_critical_95(1000), 1.96, 1e-9);
}

TEST(TextTable, RendersAlignedColumns) {
    TextTable t({"name", "value"});
    t.add_row({"alpha", "1"});
    t.add_row({"b", "12345"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
    EXPECT_NE(out.find("| b     | 12345 |"), std::string::npos);
}

TEST(TextTable, FmtTrimsTrailingZeros) {
    EXPECT_EQ(fmt(1.5, 3), "1.5");
    EXPECT_EQ(fmt(2.0, 3), "2");
    EXPECT_EQ(fmt(0.125, 3), "0.125");
}

}  // namespace
}  // namespace m2p::util
