// Concurrent instrumentation churn: the lock-free dispatch path must
// deliver every snippet execution exactly once while snippets are
// inserted/removed and functions are registered from other threads.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "instr/registry.hpp"

namespace m2p::instr {
namespace {

TEST(InstrConcurrency, ChurnWhileEightThreadsDispatch) {
    Registry reg;
    const FuncId f = reg.register_function("f", "m", 0);
    constexpr int kThreads = 8;
    constexpr long kGuards = 4000;

    // Permanent snippet: counts entry fires per dispatching thread, so
    // a lost or duplicated execution shows up as a wrong exact count.
    std::atomic<std::uint64_t> per_thread[kThreads] = {};
    const SnippetHandle permanent =
        reg.insert(f, Where::Entry, [&](const CallContext& c) {
            per_thread[c.args[0]].fetch_add(1, std::memory_order_relaxed);
        });

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> churn_fires{0};
    std::atomic<std::uint64_t> churn_cycles{0};
    std::thread mutator([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            const SnippetHandle h =
                reg.insert(f, Where::Entry, [&](const CallContext&) {
                    churn_fires.fetch_add(1, std::memory_order_relaxed);
                });
            EXPECT_TRUE(reg.remove(h));
            churn_cycles.fetch_add(1, std::memory_order_relaxed);
        }
    });

    reg.reset_stats();
    std::vector<std::thread> dispatchers;
    for (int t = 0; t < kThreads; ++t)
        dispatchers.emplace_back([&, t] {
            const std::int64_t args[] = {t};
            for (long i = 0; i < kGuards; ++i) FunctionGuard g(reg, f, args);
        });
    for (auto& t : dispatchers) t.join();
    stop = true;
    mutator.join();

    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(per_thread[t].load(), static_cast<std::uint64_t>(kGuards))
            << "thread " << t << " lost or duplicated permanent-snippet fires";
    EXPECT_GT(churn_cycles.load(), 0u);
    // Churned snippet fires at most once per entry event.
    EXPECT_LE(churn_fires.load(), static_cast<std::uint64_t>(kThreads) * kGuards);

    const DispatchStats s = reg.stats();
    EXPECT_EQ(s.events, 2ULL * kThreads * kGuards);
    // Every entry event ran the permanent snippet; the churned one adds
    // exactly churn_fires executions on top.
    EXPECT_EQ(s.snippets_executed,
              static_cast<std::uint64_t>(kThreads) * kGuards + churn_fires.load());

    // Clean shutdown: after removal nothing fires any more.
    EXPECT_TRUE(reg.remove(permanent));
    EXPECT_EQ(reg.snippet_count(f, Where::Entry), 0u);
    const std::uint64_t before = per_thread[0].load();
    {
        const std::int64_t args[] = {0};
        FunctionGuard g(reg, f, args);
    }
    EXPECT_EQ(per_thread[0].load(), before);
}

TEST(InstrConcurrency, RegisterWhileDispatching) {
    // The append-only table must stay readable (no locks, no
    // reallocation) while another thread grows it past chunk
    // boundaries.
    Registry reg;
    const FuncId f = reg.register_function("hot", "m", 0);
    std::atomic<std::uint64_t> fires{0};
    reg.insert(f, Where::Entry,
               [&](const CallContext&) { fires.fetch_add(1, std::memory_order_relaxed); });

    std::atomic<bool> stop{false};
    std::thread registrar([&] {
        for (int i = 0; i < 2000 && !stop.load(std::memory_order_relaxed); ++i)
            reg.register_function("fn" + std::to_string(i), "mod" + std::to_string(i % 7),
                                  static_cast<std::uint32_t>(Category::AppCode));
    });
    constexpr long kGuards = 20000;
    for (long i = 0; i < kGuards; ++i) FunctionGuard g(reg, f);
    stop = true;
    registrar.join();
    EXPECT_EQ(fires.load(), static_cast<std::uint64_t>(kGuards));
    EXPECT_GE(reg.function_count(), 1u);
    EXPECT_EQ(reg.find("hot", "m"), f);
}

TEST(InstrConcurrency, StatsAreShardedPerRegistry) {
    // Two registries used alternately from several threads: shards must
    // not bleed between registries.
    Registry a, b;
    const FuncId fa = a.register_function("f", "m", 0);
    const FuncId fb = b.register_function("f", "m", 0);
    constexpr int kThreads = 4;
    constexpr long kGuards = 3000;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t)
        ts.emplace_back([&] {
            for (long i = 0; i < kGuards; ++i) {
                FunctionGuard ga(a, fa);
                FunctionGuard gb(b, fb);
            }
        });
    for (auto& t : ts) t.join();
    EXPECT_EQ(a.stats().events, 2ULL * kThreads * kGuards);
    EXPECT_EQ(b.stats().events, 2ULL * kThreads * kGuards);
    a.reset_stats();
    EXPECT_EQ(a.stats().events, 0u);
    EXPECT_EQ(b.stats().events, 2ULL * kThreads * kGuards);
}

TEST(InstrConcurrency, RemoveDuringDispatchKeepsSnapshotAlive) {
    // A dispatcher walking a snapshot while the snippet is removed must
    // finish on the old snapshot (hazard protection), never crash.
    Registry reg;
    const FuncId f = reg.register_function("f", "m", 0);
    std::atomic<std::uint64_t> fires{0};
    std::atomic<bool> stop{false};
    std::thread dispatcher([&] {
        while (!stop.load(std::memory_order_relaxed)) FunctionGuard g(reg, f);
    });
    for (int i = 0; i < 3000; ++i) {
        const SnippetHandle h = reg.insert(f, Where::Return, [&](const CallContext&) {
            fires.fetch_add(1, std::memory_order_relaxed);
        });
        const SnippetHandle h2 = reg.insert(f, Where::Return, [&](const CallContext&) {
            fires.fetch_add(1, std::memory_order_relaxed);
        }, /*prepend=*/true);
        EXPECT_TRUE(reg.remove(h2));
        EXPECT_TRUE(reg.remove(h));
    }
    stop = true;
    dispatcher.join();
    EXPECT_EQ(reg.snippet_count(f, Where::Return), 0u);
    SUCCEED();
}

}  // namespace
}  // namespace m2p::instr
