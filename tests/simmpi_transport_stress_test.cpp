// Transport stress: hammer the lock-free handle tables and the
// mailbox fast path from many ranks at once while new processes are
// being spawned (table appends racing table reads).  Run under TSAN
// in CI -- the point is to give the sanitizer real concurrency to
// chew on, and to prove payload integrity under contention.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "simmpi/launcher.hpp"
#include "simmpi/rank.hpp"
#include "simmpi/world.hpp"

namespace m2p::simmpi {
namespace {

std::uint64_t payload_word(int src, int iter) {
    return (static_cast<std::uint64_t>(src) << 32) | static_cast<std::uint32_t>(iter);
}

class TransportStressTest : public ::testing::TestWithParam<CollAlgo> {};

TEST_P(TransportStressTest, RingTrafficWhileSpawning) {
    // N ranks push blocking ring traffic and Isend/Wait bursts while
    // rank 0 repeatedly spawns child worlds whose ranks also exchange
    // messages: every spawn appends to the proc/mailbox tables that
    // the ring readers traverse lock-free.
    constexpr int kRing = 6;
    constexpr int kIters = 150;
    constexpr int kSpawns = 4;

    instr::Registry reg;
    World::Config cfg;
    cfg.coll_algo = GetParam();
    World world(reg, cfg);
    std::atomic<int> child_ok{0};
    std::atomic<long> words_checked{0};

    world.register_program("child", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0, n = 0;
        r.MPI_Comm_rank(w, &me);
        r.MPI_Comm_size(w, &n);
        // Children exchange among themselves too, on fresh handles.
        for (int i = 0; i < 20; ++i) {
            std::uint64_t out = payload_word(me + 100, i), in = 0;
            const int peer = (me + 1) % n;
            const int from = (me - 1 + n) % n;
            Status st;
            r.MPI_Sendrecv(&out, 8, MPI_BYTE, peer, 2, &in, 8, MPI_BYTE, from, 2, w, &st);
            ASSERT_EQ(in, payload_word(from + 100, i));
        }
        int sum = 0;
        r.MPI_Allreduce(&me, &sum, 1, MPI_INT, MPI_SUM, w);
        ASSERT_EQ(sum, n * (n - 1) / 2);
        ++child_ok;
        r.MPI_Finalize();
    });

    world.register_program("ring", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0, n = 0;
        r.MPI_Comm_rank(w, &me);
        r.MPI_Comm_size(w, &n);
        const int next = (me + 1) % n;
        const int prev = (me - 1 + n) % n;
        for (int i = 0; i < kIters; ++i) {
            // Nonblocking burst: four in-flight sends, then a blocking
            // ring step, then drain.  Exercises the request free list
            // (slots recycled every iteration) and eager buffering.
            Request reqs[4];
            std::uint64_t out[4];
            for (int k = 0; k < 4; ++k) {
                out[k] = payload_word(me, 4 * i + k);
                ASSERT_EQ(r.MPI_Isend(&out[k], 8, MPI_BYTE, next, 10 + k, w, &reqs[k]),
                          MPI_SUCCESS);
            }
            std::uint64_t ring_out = payload_word(me, i), ring_in = 0;
            Status st;
            ASSERT_EQ(r.MPI_Sendrecv(&ring_out, 8, MPI_BYTE, next, 9, &ring_in, 8,
                                     MPI_BYTE, prev, 9, w, &st),
                      MPI_SUCCESS);
            ASSERT_EQ(ring_in, payload_word(prev, i));
            for (int k = 0; k < 4; ++k) {
                std::uint64_t in = 0;
                ASSERT_EQ(r.MPI_Recv(&in, 8, MPI_BYTE, prev, 10 + k, w, nullptr),
                          MPI_SUCCESS);
                ASSERT_EQ(in, payload_word(prev, 4 * i + k));
                ++words_checked;
            }
            Status sts[4];
            ASSERT_EQ(r.MPI_Waitall(4, reqs, sts), MPI_SUCCESS);

            // Spawn in the middle of the traffic (collective over the
            // world, rank 0 as root): handle-table appends race the
            // in-flight lock-free lookups above.
            if (i % (kIters / kSpawns) == kIters / kSpawns / 2) {
                Comm inter = MPI_COMM_NULL;
                std::vector<int> errcodes;
                ASSERT_EQ(r.MPI_Comm_spawn("child", {}, 3, MPI_INFO_NULL, 0, w,
                                           &inter, &errcodes),
                          MPI_SUCCESS);
                for (int e : errcodes) ASSERT_EQ(e, MPI_SUCCESS);
            }
        }
        r.MPI_Finalize();
    });

    LaunchPlan plan;
    for (int i = 0; i < kRing; ++i) plan.placements.push_back("node0");
    launch(world, "ring", {}, plan);
    world.join_all();

    // Four collective spawns of 3 children each.
    EXPECT_EQ(child_ok.load(), 3 * kSpawns);
    EXPECT_EQ(words_checked.load(), static_cast<long>(kRing) * kIters * 4);
    EXPECT_TRUE(world.all_finished());
}

TEST_P(TransportStressTest, HandleChurnRecyclesRequestsAndComms) {
    // Create/free communicators and requests in a loop from all ranks:
    // the comm free path releases payload, and the request free list
    // must hand slots back without ever aliasing a live request.
    instr::Registry reg;
    World::Config cfg;
    cfg.coll_algo = GetParam();
    World world(reg, cfg);
    world.register_program("churn", [](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0, n = 0;
        r.MPI_Comm_rank(w, &me);
        r.MPI_Comm_size(w, &n);
        for (int i = 0; i < 40; ++i) {
            Comm dup = MPI_COMM_NULL;
            ASSERT_EQ(r.MPI_Comm_dup(w, &dup), MPI_SUCCESS);
            // Traffic on the dup, then a collective free.
            std::uint64_t out = payload_word(me, i), in = 0;
            Status st;
            ASSERT_EQ(r.MPI_Sendrecv(&out, 8, MPI_BYTE, (me + 1) % n, 3, &in, 8,
                                     MPI_BYTE, (me - 1 + n) % n, 3, dup, &st),
                      MPI_SUCCESS);
            ASSERT_EQ(in, payload_word((me - 1 + n) % n, i));
            Group g = MPI_GROUP_NULL;
            ASSERT_EQ(r.MPI_Comm_group(dup, &g), MPI_SUCCESS);
            ASSERT_EQ(r.MPI_Group_free(&g), MPI_SUCCESS);
            r.MPI_Barrier(dup);
            ASSERT_EQ(r.MPI_Comm_free(&dup), MPI_SUCCESS);
            ASSERT_EQ(dup, MPI_COMM_NULL);

            // Irecv-before-send then cancel-free rotation of requests.
            std::uint64_t nb_in = 0;
            Request rq = MPI_REQUEST_NULL;
            ASSERT_EQ(r.MPI_Irecv(&nb_in, 8, MPI_BYTE, (me - 1 + n) % n, 4, w, &rq),
                      MPI_SUCCESS);
            std::uint64_t nb_out = payload_word(me, -i - 1);
            ASSERT_EQ(r.MPI_Send(&nb_out, 8, MPI_BYTE, (me + 1) % n, 4, w),
                      MPI_SUCCESS);
            ASSERT_EQ(r.MPI_Wait(&rq, nullptr), MPI_SUCCESS);
            ASSERT_EQ(nb_in, payload_word((me - 1 + n) % n, -i - 1));
        }
        r.MPI_Finalize();
    });
    LaunchPlan plan;
    for (int i = 0; i < 5; ++i) plan.placements.push_back("node0");
    launch(world, "churn", {}, plan);
    world.join_all();
    EXPECT_TRUE(world.all_finished());
}

INSTANTIATE_TEST_SUITE_P(Algos, TransportStressTest,
                         ::testing::Values(CollAlgo::Flat, CollAlgo::Tree),
                         [](const ::testing::TestParamInfo<CollAlgo>& i) {
                             return i.param == CollAlgo::Flat ? "Flat" : "Tree";
                         });

}  // namespace
}  // namespace m2p::simmpi
