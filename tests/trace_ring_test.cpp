// Flight-recorder ring properties and postmortem correlation.
//
// The recorder's accounting contract is exact, not statistical:
// events_written == events_kept + events_dropped even while snapshot
// readers race overwriting writers.  And the postmortem dump a world
// emits when a fault plan kills a rank must name that rank's last
// recorded call, matching its epitaph -- the "what was it doing when
// it died" guarantee the flight recorder exists for.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "simmpi/faults.hpp"
#include "simmpi/launcher.hpp"
#include "simmpi/rank.hpp"
#include "simmpi/world.hpp"
#include "trace/exporter.hpp"
#include "trace/flight_recorder.hpp"

namespace m2p::trace {
namespace {

TEST(TraceRing, ExactAccountingUnderMultiThreadChurn) {
    constexpr int kThreads = 8;
    constexpr std::uint64_t kPerThread = 5000;
    FlightRecorder::Options opts;
    opts.ring_capacity = 256;
    FlightRecorder fr(opts);

    std::atomic<bool> done{false};
    // A concurrent reader hammers snapshot() the whole time: every
    // event it sees must be well-formed (never torn), even while every
    // writer is overwriting its ring.
    std::thread reader([&] {
        while (!done.load(std::memory_order_acquire)) {
            for (const Event& e : fr.snapshot()) {
                ASSERT_GE(e.kind, static_cast<std::uint32_t>(EventKind::MpiCall));
                ASSERT_LE(e.kind, static_cast<std::uint32_t>(EventKind::RunOutcome));
                ASSERT_NE(e.name, nullptr);
            }
        }
    });
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([&fr, t] {
            for (std::uint64_t i = 0; i < kPerThread; ++i)
                fr.record(EventKind::Pt2ptSend, t, "evt",
                          static_cast<std::int64_t>(i));
        });
    }
    for (auto& w : writers) w.join();
    done.store(true, std::memory_order_release);
    reader.join();

    const FlightRecorder::Stats st = fr.stats();
    EXPECT_EQ(st.rings, kThreads);
    EXPECT_EQ(st.written, kThreads * kPerThread);
    EXPECT_EQ(st.written, st.kept + st.dropped);  // exact, by construction
    // Every ring ran full; derive from the recorder (capacities round
    // up to a power of two) instead of repeating the literal.
    EXPECT_EQ(st.kept, kThreads * fr.ring_capacity());
    // Quiescent now: the merged snapshot holds exactly the kept events.
    EXPECT_EQ(fr.snapshot().size(), st.kept);
}

TEST(TraceRing, OverwritesOldestAndKeepsNewestExactly) {
    // Overflow accounting at the WORLD's default capacity, read from
    // the config instead of hardcoded, so the case keeps testing the
    // shipped default even if an env/config override changes it.
    const std::uint64_t cap = simmpi::World::Config{}.trace_ring_capacity;
    FlightRecorder::Options opts;
    opts.ring_capacity = cap;
    FlightRecorder fr(opts);
    ASSERT_EQ(fr.ring_capacity(), cap) << "default must already be a power of two";
    const std::uint64_t total = cap + cap / 4;  // overflow by a quarter ring
    for (std::uint64_t i = 0; i < total; ++i)
        fr.record(EventKind::Io, 0, "io", static_cast<std::int64_t>(i));

    const FlightRecorder::Stats st = fr.stats();
    EXPECT_EQ(st.written, total);
    EXPECT_EQ(st.kept, cap);
    EXPECT_EQ(st.dropped, total - cap);

    const std::vector<Event> events = fr.snapshot();
    ASSERT_EQ(events.size(), cap);
    // The oldest quarter was overwritten; the survivors are the newest
    // `cap` events in order.
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].a, static_cast<std::int64_t>(total - cap + i));
}

TEST(TraceRing, SmallCapacitiesRoundUpToAPowerOfTwo) {
    FlightRecorder::Options opts;
    opts.ring_capacity = 100;
    FlightRecorder fr(opts);
    EXPECT_EQ(fr.ring_capacity(), 128u);
}

// ---------------------------------------------------------------------------
// Postmortem correlation: a chaos plan kills a rank mid-run; the dump
// must name that rank's last recorded call, and it must match the
// epitaph's last-call record.
// ---------------------------------------------------------------------------

TEST(TraceRing, PostmortemNamesTheKilledRanksLastCall) {
    using simmpi::FaultPlan;
    using simmpi::LaunchPlan;
    using simmpi::Rank;
    using simmpi::World;

    // Postmortems must stay correlated past the old 16-rank wall; the
    // 256-rank point needs a deeper ring so the dead rank's last call
    // is still resident when 255 survivors keep churning events.
    for (const int kRanks : {4, 64, 256}) {
    bool correlated = false;
    // Which fault lands first depends on the seed (a dropped message
    // can make everyone bail before the victim reaches its kill call),
    // so scan seeds until one produces an epitaph.
    for (std::uint64_t seed : {1u, 7u, 23u, 42u, 5u}) {
        instr::Registry reg;
        World::Config cfg;
        cfg.flavor = simmpi::Flavor::Lam;
        cfg.wait_deadline_seconds = 1.0;
        cfg.join_deadline_seconds = 20.0;
        if (kRanks >= 256) cfg.trace_ring_capacity = 65536;
        cfg.faults = FaultPlan::chaos(seed, kRanks);
        World world(reg, cfg);
        world.register_program("chaotic", [&](Rank& r,
                                              const std::vector<std::string>&) {
            r.MPI_Init();
            const simmpi::Comm wc = r.MPI_COMM_WORLD();
            int me = 0, n = 0;
            r.MPI_Comm_rank(wc, &me);
            r.MPI_Comm_size(wc, &n);
            int rc = simmpi::MPI_SUCCESS;
            for (int i = 0; i < 80 && rc == simmpi::MPI_SUCCESS; ++i) {
                int tok = me, sum = 0;
                rc = r.MPI_Allreduce(&tok, &sum, 1, simmpi::MPI_INT,
                                     simmpi::MPI_SUM, wc);
                if (rc != simmpi::MPI_SUCCESS) break;
                rc = r.MPI_Barrier(wc);
            }
            r.MPI_Finalize();
        });
        LaunchPlan plan;
        for (int i = 0; i < kRanks; ++i)
            plan.placements.push_back("node" + std::to_string(i % 2));
        launch(world, "chaotic", {}, plan);
        world.join_all();
        if (world.epitaphs().empty()) continue;

        const simmpi::Epitaph e = world.epitaphs().front();
        ASSERT_NE(world.recorder(), nullptr);
        Exporter exporter(*world.recorder());

        const std::string pm = exporter.postmortem(world, "test");
        EXPECT_NE(pm.find("=== flight-recorder postmortem: test ==="),
                  std::string::npos);
        EXPECT_NE(pm.find("rank " + std::to_string(e.global_rank) + " [DEAD"),
                  std::string::npos)
            << pm;
        // The acceptance criterion: the recorder's last call event for
        // the dead rank lines up with its epitaph.
        EXPECT_NE(pm.find("last recorded call: " + e.last_call), std::string::npos)
            << "epitaph last_call=" << e.last_call << "\n"
            << pm;

        const std::string json = exporter.chrome_trace_json();
        EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
        EXPECT_NE(json.find(e.last_call), std::string::npos);
        correlated = true;  // one correlated death per size is the point
        break;
    }
    EXPECT_TRUE(correlated)
        << "no chaos seed produced an epitaph at " << kRanks << " ranks";
    }
}

// Tracing can be turned off entirely; the world then records nothing
// and emit_postmortem degrades to a no-op instead of crashing.
TEST(TraceRing, WorldWithTracingDisabledHasNoRecorder) {
    instr::Registry reg;
    simmpi::World::Config cfg;
    cfg.trace_enabled = false;
    simmpi::World world(reg, cfg);
    EXPECT_EQ(world.recorder(), nullptr);
    world.emit_postmortem("should be a no-op");
}

}  // namespace
}  // namespace m2p::trace
