// Presta rma stress benchmark + the paper's tool-vs-benchmark
// comparison methodology (section 5.2.1.3).
#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/session.hpp"
#include "presta/presta.hpp"
#include "util/stats.hpp"

namespace m2p::presta {
namespace {

using core::Focus;
using core::Session;
using simmpi::Flavor;

RmaConfig small_cfg() {
    RmaConfig c;
    c.bytes = 256;
    c.ops_per_epoch = 20;
    c.epochs = 5;
    return c;
}

TEST(Presta, ReportsAllFourModes) {
    Session s(Flavor::Lam);
    const RmaConfig cfg = small_cfg();
    auto sink = register_program(s.world(), cfg);
    s.run(kPrestaRma, 2);
    const auto results = sink->results();
    ASSERT_EQ(results.size(), 4u);
    EXPECT_EQ(results[0].test, "uni-put");
    EXPECT_EQ(results[3].test, "bi-get");
    const long long per_origin =
        static_cast<long long>(cfg.epochs) * cfg.ops_per_epoch;
    EXPECT_EQ(results[0].ops, per_origin);
    EXPECT_EQ(results[2].ops, 2 * per_origin);  // bidirectional
    for (const auto& r : results) {
        EXPECT_GT(r.seconds, 0.0);
        EXPECT_GT(r.throughput_mb_s, 0.0);
        EXPECT_GT(r.us_per_op, 0.0);
        EXPECT_EQ(r.bytes, r.ops * cfg.bytes);
    }
}

TEST(Presta, RequiresExactlyTwoRanks) {
    Session s(Flavor::Lam);
    auto sink = register_program(s.world(), small_cfg());
    s.run(kPrestaRma, 3);  // wrong size: benchmark refuses, no crash
    EXPECT_TRUE(sink->results().empty());
}

TEST(Presta, ToolCountsMatchSelfReportedOps) {
    // The paper's validation: Paradyn's rma_put_ops / rma_get_ops /
    // byte metrics against the counts Presta itself reports.
    for (const Flavor flavor : {Flavor::Lam, Flavor::Mpich}) {
        Session s(flavor);
        const RmaConfig cfg = small_cfg();
        auto sink = register_program(s.world(), cfg);
        auto puts = s.tool().metrics().request("rma_put_ops", Focus{});
        auto gets = s.tool().metrics().request("rma_get_ops", Focus{});
        auto put_bytes = s.tool().metrics().request("rma_put_bytes", Focus{});
        s.run(kPrestaRma, 2);
        long long expect_puts = 0, expect_gets = 0;
        for (const auto& r : sink->results()) {
            if (r.test.find("put") != std::string::npos) expect_puts += r.ops;
            if (r.test.find("get") != std::string::npos) expect_gets += r.ops;
        }
        EXPECT_DOUBLE_EQ(puts->total(), static_cast<double>(expect_puts)) <<
            simmpi::flavor_name(flavor);
        EXPECT_DOUBLE_EQ(gets->total(), static_cast<double>(expect_gets));
        EXPECT_DOUBLE_EQ(put_bytes->total(),
                         static_cast<double>(expect_puts * cfg.bytes));
        s.tool().metrics().release(puts);
        s.tool().metrics().release(gets);
        s.tool().metrics().release(put_bytes);
    }
}

TEST(Presta, RepeatedTrialsAgreeWithinNoise) {
    // Paired-difference methodology smoke test: tool ops minus Presta
    // ops is exactly zero on every trial, so the CI of the differences
    // must include (equal) zero.
    std::vector<double> diffs;
    for (int trial = 0; trial < 3; ++trial) {
        Session s(Flavor::Lam);
        auto sink = register_program(s.world(), small_cfg());
        auto puts = s.tool().metrics().request("rma_put_ops", Focus{});
        s.run(kPrestaRma, 2);
        long long expect = 0;
        for (const auto& r : sink->results())
            if (r.test.find("put") != std::string::npos) expect += r.ops;
        diffs.push_back(puts->total() - static_cast<double>(expect));
        s.tool().metrics().release(puts);
    }
    const m2p::util::ConfidenceInterval ci = m2p::util::mean_ci95(diffs);
    EXPECT_FALSE(ci.excludes_zero());
}

}  // namespace
}  // namespace m2p::presta
