// MPI-2 thread support, datatype naming, and the ascii chart renderer.
#include <gtest/gtest.h>

#include <thread>

#include "simmpi/launcher.hpp"
#include "simmpi/rank.hpp"
#include "util/ascii_chart.hpp"

namespace m2p {
namespace {

using simmpi::Comm;
using simmpi::Rank;

void run1(std::function<void(Rank&)> fn) {
    instr::Registry reg;
    simmpi::World world(reg, {});
    world.register_program("p", [fn](Rank& r, const std::vector<std::string>&) { fn(r); });
    simmpi::LaunchPlan plan;
    plan.placements = {"n"};
    simmpi::launch(world, "p", {}, plan);
    world.join_all();
}

TEST(ThreadSupport, InitThreadGrantsRequestedLevel) {
    run1([](Rank& r) {
        int provided = -1;
        ASSERT_EQ(r.MPI_Init_thread(simmpi::MPI_THREAD_MULTIPLE, &provided),
                  simmpi::MPI_SUCCESS);
        EXPECT_EQ(provided, simmpi::MPI_THREAD_MULTIPLE);
        int queried = -1;
        EXPECT_EQ(r.MPI_Query_thread(&queried), simmpi::MPI_SUCCESS);
        EXPECT_EQ(queried, simmpi::MPI_THREAD_MULTIPLE);
        r.MPI_Finalize();
    });
}

TEST(ThreadSupport, InitThreadRejectsBadLevel) {
    run1([](Rank& r) {
        int provided = -1;
        EXPECT_EQ(r.MPI_Init_thread(42, &provided), simmpi::MPI_ERR_ARG);
        EXPECT_EQ(r.MPI_Init_thread(simmpi::MPI_THREAD_FUNNELED, nullptr),
                  simmpi::MPI_ERR_ARG);
        r.MPI_Init();
        r.MPI_Finalize();
    });
}

TEST(ThreadSupport, FunneledAppWithHelperThreadWorks) {
    // A FUNNELED application: a helper thread computes while the main
    // rank thread does all MPI calls -- the multi-threaded shape the
    // paper says tools must tolerate (section 3).
    instr::Registry reg;
    simmpi::World world(reg, {});
    std::atomic<int> helper_ran{0};
    world.register_program("p", [&](Rank& r, const std::vector<std::string>&) {
        int provided = 0;
        r.MPI_Init_thread(simmpi::MPI_THREAD_FUNNELED, &provided);
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        std::thread helper([&] { ++helper_ran; });
        int v = me;
        if (me == 0)
            r.MPI_Send(&v, 1, simmpi::MPI_INT, 1, 0, w);
        else
            r.MPI_Recv(&v, 1, simmpi::MPI_INT, 0, 0, w, nullptr);
        helper.join();
        r.MPI_Finalize();
    });
    simmpi::LaunchPlan plan;
    plan.placements = {"n", "n"};
    simmpi::launch(world, "p", {}, plan);
    world.join_all();
    EXPECT_EQ(helper_ran.load(), 2);
}

TEST(TypeNaming, SetAndGet) {
    run1([](Rank& r) {
        r.MPI_Init();
        EXPECT_EQ(r.MPI_Type_set_name(simmpi::MPI_DOUBLE, "FieldElement"),
                  simmpi::MPI_SUCCESS);
        std::string name;
        EXPECT_EQ(r.MPI_Type_get_name(simmpi::MPI_DOUBLE, &name), simmpi::MPI_SUCCESS);
        EXPECT_EQ(name, "FieldElement");
        EXPECT_EQ(r.MPI_Type_get_name(simmpi::MPI_INT, &name), simmpi::MPI_SUCCESS);
        EXPECT_EQ(name, "");
        EXPECT_EQ(r.MPI_Type_set_name(simmpi::MPI_DATATYPE_NULL, "x"),
                  simmpi::MPI_ERR_TYPE);
        r.MPI_Finalize();
    });
}

TEST(AsciiChart, RendersBarsScaledToPeak) {
    const std::string out = util::render_chart(
        {{"series", {0.0, 5.0, 10.0, 2.5}}}, 0.5, 4, "units");
    EXPECT_NE(out.find("series"), std::string::npos);
    EXPECT_NE(out.find('#'), std::string::npos);
    EXPECT_NE(out.find("[units per bin]"), std::string::npos);
    // The peak column reaches the top row; the zero column never shows.
    const std::size_t first_line = out.find('\n');
    const std::string top = out.substr(first_line + 1, out.find('\n', first_line + 1) -
                                                           first_line - 1);
    EXPECT_EQ(std::count(top.begin(), top.end(), '#'), 1);
}

TEST(AsciiChart, EmptyDataSaysSo) {
    EXPECT_EQ(util::render_chart({}, 0.1), "(no data)\n");
    EXPECT_EQ(util::render_chart({{"s", {0.0, 0.0}}}, 0.1), "(no data)\n");
}

TEST(AsciiChart, MultipleSeriesShareScale) {
    const std::string out = util::render_chart(
        {{"big", {10.0}}, {"small", {1.0}}}, 1.0, 10);
    // "small" is 1/10 of the shared peak: exactly one '#' row.
    const std::size_t small_at = out.find("small");
    ASSERT_NE(small_at, std::string::npos);
    const std::string small_block = out.substr(small_at);
    EXPECT_EQ(std::count(small_block.begin(), small_block.end(), '#'), 1);
}

}  // namespace
}  // namespace m2p
