// MPI-IO transfer matrix: every MPI_File_* data operation, across both
// library flavors and {2, 5, 16}-rank worlds, with exact byte-counter
// assertions checked twice -- once from the Status each call returns,
// and once from the flight recorder's Io events, which must agree with
// it byte for byte.  Plus the fault interplay: a rank that dies inside
// a collective file operation fails the survivors with
// MPI_ERR_PROC_FAILED instead of wedging the epoch.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "simmpi/faults.hpp"
#include "simmpi/launcher.hpp"
#include "simmpi/rank.hpp"
#include "simmpi/world.hpp"
#include "trace/flight_recorder.hpp"

namespace m2p::simmpi {
namespace {

World::Config fast_fs(Flavor f) {
    World::Config c;
    c.flavor = f;
    c.file_latency_seconds = 1e-6;  // keep 16-rank rounds quick
    c.file_bandwidth_bytes_per_second = 10e9;
    return c;
}

void run_ranks(World& world, int n) {
    LaunchPlan plan;
    for (int i = 0; i < n; ++i)
        plan.placements.push_back("node" + std::to_string(i % 2));
    launch(world, "prog", {}, plan);
    world.join_all();
}

/// Per-rank payload size for the explicit-offset stripe: distinct per
/// rank so a swapped counter cannot cancel out.
int stripe_bytes(int me) { return 8 * (me + 1); }

class IoMatrix : public ::testing::TestWithParam<std::tuple<Flavor, int>> {};

TEST_P(IoMatrix, EveryTransferOpMovesExactlyTheBytesItClaims) {
    const auto [flavor, nranks] = GetParam();
    instr::Registry reg;
    World world(reg, fast_fs(flavor));

    // rank -> op -> bytes claimed by the returned Status.
    std::mutex mu;
    std::map<int, std::map<std::string, std::int64_t>> claimed;
    auto claim = [&](int me, const char* op, const Status& st) {
        std::lock_guard lk(mu);
        claimed[me][op] += st.count_bytes;
    };

    world.register_program("prog", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0, n = 0;
        r.MPI_Comm_rank(w, &me);
        r.MPI_Comm_size(w, &n);
        File fh = MPI_FILE_NULL;
        ASSERT_EQ(r.MPI_File_open(w, "matrix.dat", MPI_MODE_CREATE | MPI_MODE_RDWR,
                                  MPI_INFO_NULL, &fh),
                  MPI_SUCCESS);
        // Large enough for the biggest stripe (rank 15 writes 128 bytes).
        std::vector<char> buf(192, static_cast<char>('a' + (me % 26)));
        Status st;

        // Explicit offsets: disjoint stripes, distinct sizes per rank.
        const int b = stripe_bytes(me);
        ASSERT_EQ(r.MPI_File_write_at(fh, me * 64, buf.data(), b, MPI_BYTE, &st),
                  MPI_SUCCESS);
        EXPECT_EQ(st.count_bytes, b);
        claim(me, "MPI_File_write_at", st);
        ASSERT_EQ(r.MPI_Barrier(w), MPI_SUCCESS);
        ASSERT_EQ(r.MPI_File_read_at(fh, me * 64, buf.data(), b, MPI_BYTE, &st),
                  MPI_SUCCESS);
        EXPECT_EQ(st.count_bytes, b);
        claim(me, "MPI_File_read_at", st);

        // Individual pointer: seek to the stripe, write then read back.
        ASSERT_EQ(r.MPI_File_seek(fh, me * 64, MPI_SEEK_SET), MPI_SUCCESS);
        ASSERT_EQ(r.MPI_File_write(fh, buf.data(), 16, MPI_BYTE, &st), MPI_SUCCESS);
        EXPECT_EQ(st.count_bytes, 16);
        claim(me, "MPI_File_write", st);
        ASSERT_EQ(r.MPI_File_seek(fh, me * 64, MPI_SEEK_SET), MPI_SUCCESS);
        ASSERT_EQ(r.MPI_File_read(fh, buf.data(), 16, MPI_BYTE, &st), MPI_SUCCESS);
        EXPECT_EQ(st.count_bytes, 16);
        claim(me, "MPI_File_read", st);

        // Collective transfers (individual pointers, now at stripe+16).
        ASSERT_EQ(r.MPI_File_write_all(fh, buf.data(), 32, MPI_BYTE, &st),
                  MPI_SUCCESS);
        EXPECT_EQ(st.count_bytes, 32);
        claim(me, "MPI_File_write_all", st);
        ASSERT_EQ(r.MPI_File_seek(fh, me * 64, MPI_SEEK_SET), MPI_SUCCESS);
        ASSERT_EQ(r.MPI_File_read_all(fh, buf.data(), 32, MPI_BYTE, &st),
                  MPI_SUCCESS);
        EXPECT_EQ(st.count_bytes, 32);
        claim(me, "MPI_File_read_all", st);

        // Shared pointer: every rank appends 4 bytes to the shared
        // region [0, 4n), then reads the next 4n bytes -- all inside
        // the stripe extent, so counts stay exact.
        ASSERT_EQ(r.MPI_File_write_shared(fh, buf.data(), 4, MPI_BYTE, &st),
                  MPI_SUCCESS);
        EXPECT_EQ(st.count_bytes, 4);
        claim(me, "MPI_File_write_shared", st);
        ASSERT_EQ(r.MPI_Barrier(w), MPI_SUCCESS);
        ASSERT_EQ(r.MPI_File_read_shared(fh, buf.data(), 4, MPI_BYTE, &st),
                  MPI_SUCCESS);
        EXPECT_EQ(st.count_bytes, 4);
        claim(me, "MPI_File_read_shared", st);

        ASSERT_EQ(r.MPI_File_sync(fh), MPI_SUCCESS);
        ASSERT_EQ(r.MPI_File_close(&fh), MPI_SUCCESS);
        ASSERT_EQ(r.MPI_Barrier(w), MPI_SUCCESS);
        if (me == 0)
            ASSERT_EQ(r.MPI_File_delete("matrix.dat", MPI_INFO_NULL), MPI_SUCCESS);
        r.MPI_Finalize();
    });
    run_ranks(world, nranks);
    ASSERT_TRUE(world.all_finished());
    ASSERT_TRUE(world.epitaphs().empty());
    EXPECT_FALSE(world.fs_exists("matrix.dat"));

    // Cross-check: the flight recorder's Io events, summed per rank and
    // op, must agree with the Status-claimed bytes exactly.
    ASSERT_NE(world.recorder(), nullptr);
    std::map<int, std::map<std::string, std::int64_t>> traced;
    std::map<int, std::map<std::string, int>> calls;
    for (const trace::Event& e : world.recorder()->snapshot()) {
        if (e.kind != static_cast<std::uint32_t>(trace::EventKind::Io)) continue;
        traced[e.rank][e.name] += e.a;
        calls[e.rank][e.name] += 1;
    }
    const char* kTransferOps[] = {
        "MPI_File_write_at", "MPI_File_read_at",     "MPI_File_write",
        "MPI_File_read",     "MPI_File_write_all",   "MPI_File_read_all",
        "MPI_File_write_shared", "MPI_File_read_shared"};
    for (int me = 0; me < nranks; ++me) {
        for (const char* op : kTransferOps) {
            ASSERT_TRUE(claimed[me].count(op)) << "rank " << me << " " << op;
            EXPECT_EQ(traced[me][op], claimed[me][op])
                << "rank " << me << " op " << op;
        }
        // Lifecycle ops leave exactly one zero-byte event each (three
        // seeks: stripe rewinds before write, read, and read_all).
        EXPECT_EQ(calls[me]["MPI_File_open"], 1) << "rank " << me;
        EXPECT_EQ(calls[me]["MPI_File_close"], 1) << "rank " << me;
        EXPECT_EQ(calls[me]["MPI_File_sync"], 1) << "rank " << me;
        EXPECT_EQ(calls[me]["MPI_File_seek"], 3) << "rank " << me;
        EXPECT_EQ(traced[me]["MPI_File_sync"], 0) << "rank " << me;
    }
    EXPECT_EQ(calls[0]["MPI_File_delete"], 1);
}

INSTANTIATE_TEST_SUITE_P(
    AllFlavorsAndSizes, IoMatrix,
    ::testing::Combine(::testing::Values(Flavor::Lam, Flavor::Mpich),
                       ::testing::Values(2, 5, 16)),
    [](const ::testing::TestParamInfo<IoMatrix::ParamType>& info) {
        return std::string(std::get<0>(info.param) == Flavor::Lam ? "Lam" : "Mpich") +
               std::to_string(std::get<1>(info.param)) + "ranks";
    });

// ---------------------------------------------------------------------------
// Fault interplay: a rank dies inside a collective file operation.  The
// collective's internal barrier must detect the death and fail every
// survivor with MPI_ERR_PROC_FAILED; the epitaph and the flight
// recorder both name the fatal call.
// ---------------------------------------------------------------------------

TEST(IoMatrixFaults, RankDiesInsideCollectiveWriteAll) {
    constexpr int kRanks = 5;
    constexpr int kVictim = 2;
    instr::Registry reg;
    World::Config cfg = fast_fs(Flavor::Lam);
    cfg.wait_deadline_seconds = 5.0;
    cfg.join_deadline_seconds = 30.0;
    cfg.faults = std::make_shared<FaultPlan>();
    cfg.faults->hang_in_call(kVictim, "MPI_File_write_all", 0.05);
    World world(reg, cfg);

    std::mutex mu;
    std::map<int, int> write_rc;
    world.register_program("prog", [&](Rank& r, const std::vector<std::string>&) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        File fh = MPI_FILE_NULL;
        ASSERT_EQ(r.MPI_File_open(w, "doomed.dat", MPI_MODE_CREATE | MPI_MODE_WRONLY,
                                  MPI_INFO_NULL, &fh),
                  MPI_SUCCESS);
        char b[8] = {};
        Status st;
        const int rc = r.MPI_File_write_all(fh, b, sizeof b, MPI_BYTE, &st);
        {
            std::lock_guard lk(mu);
            write_rc[me] = rc;
        }
        r.MPI_File_close(&fh);
        r.MPI_Finalize();
    });
    run_ranks(world, kRanks);

    const auto epitaphs = world.epitaphs();
    ASSERT_EQ(epitaphs.size(), 1u);
    EXPECT_EQ(epitaphs[0].global_rank, kVictim);
    EXPECT_EQ(epitaphs[0].last_call, "MPI_File_write_all");

    // The victim never reports; every survivor fails with PROC_FAILED.
    EXPECT_EQ(write_rc.count(kVictim), 0u);
    for (int me = 0; me < kRanks; ++me) {
        if (me == kVictim) continue;
        ASSERT_EQ(write_rc.count(me), 1u) << "rank " << me << " hung?";
        EXPECT_EQ(write_rc[me], MPI_ERR_PROC_FAILED) << "rank " << me;
    }

    // The recorder saw the fault fire inside the collective write.
    ASSERT_NE(world.recorder(), nullptr);
    bool fault_in_write_all = false;
    for (const trace::Event& e : world.recorder()->snapshot())
        if (e.kind == static_cast<std::uint32_t>(trace::EventKind::Fault) &&
            e.rank == kVictim && e.name &&
            std::strcmp(e.name, "MPI_File_write_all") == 0)
            fault_in_write_all = true;
    EXPECT_TRUE(fault_in_write_all);
}

}  // namespace
}  // namespace m2p::simmpi
