// MPI-I/O: the simulated parallel filesystem, open-mode semantics,
// individual/explicit/collective transfers, pointers, and errors.
#include <gtest/gtest.h>

#include "simmpi/launcher.hpp"
#include "simmpi/rank.hpp"
#include "simmpi/world.hpp"

namespace m2p::simmpi {
namespace {

struct IoFixture {
    instr::Registry reg;
    World world;
    IoFixture() : world(reg, fast_fs()) {}

    static World::Config fast_fs() {
        World::Config c;
        c.file_latency_seconds = 1e-6;  // keep tests quick
        c.file_bandwidth_bytes_per_second = 10e9;
        return c;
    }

    void run(int n, std::function<void(Rank&)> fn) {
        world.register_program("prog",
                               [fn](Rank& r, const std::vector<std::string>&) { fn(r); });
        LaunchPlan plan;
        for (int i = 0; i < n; ++i) plan.placements.push_back("node0");
        launch(world, "prog", {}, plan);
        world.join_all();
    }
};

TEST(MpiIo, WriteThenReadRoundTrips) {
    IoFixture fx;
    fx.run(1, [](Rank& r) {
        r.MPI_Init();
        File fh = MPI_FILE_NULL;
        ASSERT_EQ(r.MPI_File_open(r.MPI_COMM_WORLD(), "f.dat",
                                  MPI_MODE_CREATE | MPI_MODE_RDWR, MPI_INFO_NULL, &fh),
                  MPI_SUCCESS);
        const char out[] = "hello mpi-io";
        Status st;
        ASSERT_EQ(r.MPI_File_write(fh, out, sizeof out, MPI_BYTE, &st), MPI_SUCCESS);
        EXPECT_EQ(st.count_bytes, static_cast<int>(sizeof out));
        std::int64_t pos = -1;
        r.MPI_File_get_position(fh, &pos);
        EXPECT_EQ(pos, static_cast<std::int64_t>(sizeof out));
        ASSERT_EQ(r.MPI_File_seek(fh, 0, MPI_SEEK_SET), MPI_SUCCESS);
        char in[sizeof out] = {};
        ASSERT_EQ(r.MPI_File_read(fh, in, sizeof in, MPI_BYTE, &st), MPI_SUCCESS);
        EXPECT_STREQ(in, out);
        std::int64_t size = 0;
        r.MPI_File_get_size(fh, &size);
        EXPECT_EQ(size, static_cast<std::int64_t>(sizeof out));
        EXPECT_EQ(r.MPI_File_close(&fh), MPI_SUCCESS);
        EXPECT_EQ(fh, MPI_FILE_NULL);
        r.MPI_Finalize();
    });
    EXPECT_TRUE(fx.world.fs_exists("f.dat"));
}

TEST(MpiIo, ExplicitOffsetsGiveDisjointStripes) {
    IoFixture fx;
    fx.run(4, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0, n = 0;
        r.MPI_Comm_rank(w, &me);
        r.MPI_Comm_size(w, &n);
        File fh = MPI_FILE_NULL;
        ASSERT_EQ(r.MPI_File_open(w, "stripes.dat", MPI_MODE_CREATE | MPI_MODE_RDWR,
                                  MPI_INFO_NULL, &fh),
                  MPI_SUCCESS);
        std::vector<std::int32_t> mine(16, me + 1);
        Status st;
        ASSERT_EQ(r.MPI_File_write_at(fh, me * 64, mine.data(), 16, MPI_INT, &st),
                  MPI_SUCCESS);
        r.MPI_Barrier(w);
        // Everyone reads the neighbour's stripe and sees their value.
        const int peer = (me + 1) % n;
        std::vector<std::int32_t> theirs(16, 0);
        ASSERT_EQ(r.MPI_File_read_at(fh, peer * 64, theirs.data(), 16, MPI_INT, &st),
                  MPI_SUCCESS);
        for (std::int32_t v : theirs) EXPECT_EQ(v, peer + 1);
        r.MPI_File_close(&fh);
        r.MPI_Finalize();
    });
}

TEST(MpiIo, CollectiveWriteAllSynchronizes) {
    IoFixture fx;
    static std::atomic<int> in_phase{0};
    in_phase = 0;
    fx.run(3, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        int me = 0;
        r.MPI_Comm_rank(w, &me);
        File fh = MPI_FILE_NULL;
        r.MPI_File_open(w, "coll.dat", MPI_MODE_CREATE | MPI_MODE_WRONLY,
                        MPI_INFO_NULL, &fh);
        char b = static_cast<char>('a' + me);
        Status st;
        ASSERT_EQ(r.MPI_File_write_all(fh, &b, 1, MPI_BYTE, &st), MPI_SUCCESS);
        r.MPI_File_close(&fh);
        r.MPI_Finalize();
    });
    auto store = fx.world.fs_lookup("coll.dat", false);
    ASSERT_NE(store, nullptr);
    // Individual pointers all started at 0: the last writer's byte
    // remains at offset 0 (POSIX-like overlapping semantics).
    EXPECT_EQ(store->data.size(), 1u);
}

TEST(MpiIo, AppendModePositionsAtEnd) {
    IoFixture fx;
    fx.run(1, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        File fh = MPI_FILE_NULL;
        r.MPI_File_open(w, "log.dat", MPI_MODE_CREATE | MPI_MODE_WRONLY,
                        MPI_INFO_NULL, &fh);
        Status st;
        r.MPI_File_write(fh, "12345", 5, MPI_BYTE, &st);
        r.MPI_File_close(&fh);
        // Reopen with APPEND: writes land after the existing content.
        r.MPI_File_open(w, "log.dat", MPI_MODE_WRONLY | MPI_MODE_APPEND, MPI_INFO_NULL,
                        &fh);
        r.MPI_File_write(fh, "67", 2, MPI_BYTE, &st);
        std::int64_t size = 0;
        r.MPI_File_get_size(fh, &size);
        EXPECT_EQ(size, 7);
        r.MPI_File_close(&fh);
        r.MPI_Finalize();
    });
}

TEST(MpiIo, ShortReadAtEndOfFile) {
    IoFixture fx;
    fx.run(1, [](Rank& r) {
        r.MPI_Init();
        File fh = MPI_FILE_NULL;
        r.MPI_File_open(r.MPI_COMM_WORLD(), "short.dat",
                        MPI_MODE_CREATE | MPI_MODE_RDWR, MPI_INFO_NULL, &fh);
        Status st;
        r.MPI_File_write(fh, "abc", 3, MPI_BYTE, &st);
        char buf[10] = {};
        ASSERT_EQ(r.MPI_File_read_at(fh, 1, buf, 10, MPI_BYTE, &st), MPI_SUCCESS);
        EXPECT_EQ(st.count_bytes, 2);  // only "bc" available
        EXPECT_EQ(buf[0], 'b');
        int count = 0;
        r.MPI_Get_count(&st, MPI_BYTE, &count);
        EXPECT_EQ(count, 2);
        r.MPI_File_close(&fh);
        r.MPI_Finalize();
    });
}

TEST(MpiIo, OpenModeErrors) {
    IoFixture fx;
    fx.run(1, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        File fh = MPI_FILE_NULL;
        // No read/write mode at all.
        EXPECT_EQ(r.MPI_File_open(w, "x", MPI_MODE_CREATE, MPI_INFO_NULL, &fh),
                  MPI_ERR_AMODE);
        // Both RDONLY and WRONLY.
        EXPECT_EQ(r.MPI_File_open(w, "x", MPI_MODE_RDONLY | MPI_MODE_WRONLY,
                                  MPI_INFO_NULL, &fh),
                  MPI_ERR_AMODE);
        // EXCL without CREATE.
        EXPECT_EQ(r.MPI_File_open(w, "x", MPI_MODE_RDWR | MPI_MODE_EXCL, MPI_INFO_NULL,
                                  &fh),
                  MPI_ERR_AMODE);
        // Nonexistent without CREATE.
        EXPECT_EQ(r.MPI_File_open(w, "nope", MPI_MODE_RDONLY, MPI_INFO_NULL, &fh),
                  MPI_ERR_NO_SUCH_FILE);
        // Create, then EXCL-create again fails.
        ASSERT_EQ(r.MPI_File_open(w, "x", MPI_MODE_CREATE | MPI_MODE_RDWR,
                                  MPI_INFO_NULL, &fh),
                  MPI_SUCCESS);
        r.MPI_File_close(&fh);
        EXPECT_EQ(r.MPI_File_open(w, "x",
                                  MPI_MODE_CREATE | MPI_MODE_EXCL | MPI_MODE_RDWR,
                                  MPI_INFO_NULL, &fh),
                  MPI_ERR_FILE_EXISTS);
        r.MPI_Finalize();
    });
}

TEST(MpiIo, AccessModeEnforcedOnTransfers) {
    IoFixture fx;
    fx.run(1, [](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        File fh = MPI_FILE_NULL;
        r.MPI_File_open(w, "ro.dat", MPI_MODE_CREATE | MPI_MODE_RDWR, MPI_INFO_NULL,
                        &fh);
        Status st;
        r.MPI_File_write(fh, "z", 1, MPI_BYTE, &st);
        r.MPI_File_close(&fh);

        r.MPI_File_open(w, "ro.dat", MPI_MODE_RDONLY, MPI_INFO_NULL, &fh);
        EXPECT_EQ(r.MPI_File_write(fh, "w", 1, MPI_BYTE, &st), MPI_ERR_READ_ONLY);
        char b = 0;
        EXPECT_EQ(r.MPI_File_read(fh, &b, 1, MPI_BYTE, &st), MPI_SUCCESS);
        r.MPI_File_close(&fh);

        r.MPI_File_open(w, "ro.dat", MPI_MODE_WRONLY, MPI_INFO_NULL, &fh);
        EXPECT_EQ(r.MPI_File_read(fh, &b, 1, MPI_BYTE, &st), MPI_ERR_ACCESS);
        r.MPI_File_close(&fh);
        r.MPI_Finalize();
    });
}

TEST(MpiIo, DeleteOnCloseAndExplicitDelete) {
    IoFixture fx;
    fx.run(1, [&](Rank& r) {
        r.MPI_Init();
        const Comm w = r.MPI_COMM_WORLD();
        File fh = MPI_FILE_NULL;
        r.MPI_File_open(w, "tmp.dat",
                        MPI_MODE_CREATE | MPI_MODE_RDWR | MPI_MODE_DELETE_ON_CLOSE,
                        MPI_INFO_NULL, &fh);
        EXPECT_TRUE(fx.world.fs_exists("tmp.dat"));
        r.MPI_File_close(&fh);
        EXPECT_FALSE(fx.world.fs_exists("tmp.dat"));

        r.MPI_File_open(w, "gone.dat", MPI_MODE_CREATE | MPI_MODE_RDWR, MPI_INFO_NULL,
                        &fh);
        r.MPI_File_close(&fh);
        EXPECT_EQ(r.MPI_File_delete("gone.dat", MPI_INFO_NULL), MPI_SUCCESS);
        EXPECT_EQ(r.MPI_File_delete("gone.dat", MPI_INFO_NULL), MPI_ERR_NO_SUCH_FILE);
        r.MPI_Finalize();
    });
}

TEST(MpiIo, OperationsOnClosedHandleFail) {
    IoFixture fx;
    fx.run(1, [](Rank& r) {
        r.MPI_Init();
        File fh = MPI_FILE_NULL;
        r.MPI_File_open(r.MPI_COMM_WORLD(), "c.dat", MPI_MODE_CREATE | MPI_MODE_RDWR,
                        MPI_INFO_NULL, &fh);
        File stale = fh;
        r.MPI_File_close(&fh);
        char b = 0;
        Status st;
        EXPECT_EQ(r.MPI_File_read(stale, &b, 1, MPI_BYTE, &st), MPI_ERR_FILE);
        EXPECT_EQ(r.MPI_File_seek(stale, 0, MPI_SEEK_SET), MPI_ERR_FILE);
        EXPECT_EQ(r.MPI_File_sync(stale), MPI_ERR_FILE);
        r.MPI_Finalize();
    });
}

TEST(MpiIo, SeekWhenceVariants) {
    IoFixture fx;
    fx.run(1, [](Rank& r) {
        r.MPI_Init();
        File fh = MPI_FILE_NULL;
        r.MPI_File_open(r.MPI_COMM_WORLD(), "s.dat", MPI_MODE_CREATE | MPI_MODE_RDWR,
                        MPI_INFO_NULL, &fh);
        Status st;
        r.MPI_File_write(fh, "0123456789", 10, MPI_BYTE, &st);
        std::int64_t pos = -1;
        r.MPI_File_seek(fh, 2, MPI_SEEK_SET);
        r.MPI_File_get_position(fh, &pos);
        EXPECT_EQ(pos, 2);
        r.MPI_File_seek(fh, 3, MPI_SEEK_CUR);
        r.MPI_File_get_position(fh, &pos);
        EXPECT_EQ(pos, 5);
        r.MPI_File_seek(fh, -1, MPI_SEEK_END);
        r.MPI_File_get_position(fh, &pos);
        EXPECT_EQ(pos, 9);
        EXPECT_EQ(r.MPI_File_seek(fh, -100, MPI_SEEK_CUR), MPI_ERR_ARG);
        EXPECT_EQ(r.MPI_File_seek(fh, 0, 99), MPI_ERR_ARG);
        r.MPI_File_close(&fh);
        r.MPI_Finalize();
    });
}

TEST(MpiIo, FileViewInterpretsOffsetsInEtypes) {
    IoFixture fx;
    fx.run(1, [](Rank& r) {
        r.MPI_Init();
        File fh = MPI_FILE_NULL;
        r.MPI_File_open(r.MPI_COMM_WORLD(), "view.dat",
                        MPI_MODE_CREATE | MPI_MODE_RDWR, MPI_INFO_NULL, &fh);
        // 16-byte header, then a view of doubles starting after it.
        Status st;
        char header[16] = {'H'};
        r.MPI_File_write(fh, header, 16, MPI_BYTE, &st);
        ASSERT_EQ(r.MPI_File_set_view(fh, 16, MPI_DOUBLE, MPI_INFO_NULL),
                  MPI_SUCCESS);
        std::int64_t pos = -1;
        r.MPI_File_get_position(fh, &pos);
        EXPECT_EQ(pos, 0);  // set_view resets the pointers
        const double vals[3] = {1.5, 2.5, 3.5};
        r.MPI_File_write(fh, vals, 3, MPI_DOUBLE, &st);
        // Element 1 of the view lives at byte 16 + 8.
        double got = 0;
        r.MPI_File_read_at(fh, 1, &got, 1, MPI_DOUBLE, &st);
        EXPECT_DOUBLE_EQ(got, 2.5);
        std::int64_t size = 0;
        r.MPI_File_get_size(fh, &size);
        EXPECT_EQ(size, 16 + 3 * 8);
        std::int64_t disp = -1;
        Datatype etype = MPI_DATATYPE_NULL;
        r.MPI_File_get_view(fh, &disp, &etype);
        EXPECT_EQ(disp, 16);
        EXPECT_EQ(etype, MPI_DOUBLE);
        // Partial-etype access is rejected.
        char one = 0;
        EXPECT_EQ(r.MPI_File_write(fh, &one, 1, MPI_BYTE, &st), MPI_ERR_TYPE);
        r.MPI_File_close(&fh);
        r.MPI_Finalize();
    });
}

TEST(MpiIo, FileViewSeekEndUsesViewUnits) {
    IoFixture fx;
    fx.run(1, [](Rank& r) {
        r.MPI_Init();
        File fh = MPI_FILE_NULL;
        r.MPI_File_open(r.MPI_COMM_WORLD(), "ve.dat",
                        MPI_MODE_CREATE | MPI_MODE_RDWR, MPI_INFO_NULL, &fh);
        Status st;
        const std::int32_t vals[6] = {1, 2, 3, 4, 5, 6};
        r.MPI_File_write(fh, vals, 6, MPI_INT, &st);
        r.MPI_File_set_view(fh, 8, MPI_INT, MPI_INFO_NULL);  // skip first two ints
        r.MPI_File_seek(fh, -1, MPI_SEEK_END);
        std::int64_t pos = -1;
        r.MPI_File_get_position(fh, &pos);
        EXPECT_EQ(pos, 3);  // 4 ints visible in the view; last one at 3
        std::int32_t got = 0;
        r.MPI_File_read(fh, &got, 1, MPI_INT, &st);
        EXPECT_EQ(got, 6);
        r.MPI_File_close(&fh);
        r.MPI_Finalize();
    });
}

TEST(MpiIo, GetInfoReturnsHintsFromOpen) {
    IoFixture fx;
    fx.run(1, [&](Rank& r) {
        r.MPI_Init();
        Info hints = MPI_INFO_NULL;
        r.MPI_Info_create(&hints);
        r.MPI_Info_set(hints, "access_style", "write_once,read_mostly");
        File fh = MPI_FILE_NULL;
        r.MPI_File_open(r.MPI_COMM_WORLD(), "h.dat",
                        MPI_MODE_CREATE | MPI_MODE_RDWR, hints, &fh);
        Info out = MPI_INFO_NULL;
        ASSERT_EQ(r.MPI_File_get_info(fh, &out), MPI_SUCCESS);
        EXPECT_EQ(fx.world.info(out).kv.at("access_style"),
                  "write_once,read_mostly");
        r.MPI_File_close(&fh);
        r.MPI_Finalize();
    });
}

}  // namespace
}  // namespace m2p::simmpi
