// Performance Consultant search behaviour on programs with known
// bottlenecks (a fast subset of the Table 2/3 grading; the benches run
// the full suite).
#include <gtest/gtest.h>

#include "core/session.hpp"
#include "pperfmark/pperfmark.hpp"

namespace m2p::core {
namespace {

using simmpi::Flavor;

/// Iteration counts are tuned so each program runs ~1.5-3 s: long
/// enough for several Performance Consultant refinement waves, short
/// enough for the test suite.
ppm::Params fast_params(int iterations) {
    ppm::Params p;
    p.iterations = iterations;
    p.time_to_waste = 2;
    p.waste_unit_seconds = 0.002;
    return p;
}

PerformanceConsultant::Options fast_opts() {
    PerformanceConsultant::Options o;
    o.eval_interval = 0.06;
    o.max_search_seconds = 4.0;
    return o;
}

TEST(Consultant, FindsClientSendBottleneckInSmallMessages) {
    Session s(Flavor::Lam);
    ppm::register_all(s.world(), fast_params(150000));
    const PCReport r =
        s.run_with_consultant(ppm::kSmallMessages, 6, fast_opts());
    EXPECT_TRUE(r.found("ExcessiveSyncWaitingTime", "WholeProgram") ||
                r.found("ExcessiveSyncWaitingTime", "/Code"))
        << PerformanceConsultant::render_condensed(r);
    // Drill-down reaches Gsend_message and MPI_Send (paper Fig 3).
    EXPECT_TRUE(r.found("ExcessiveSyncWaitingTime", "Gsend_message"))
        << PerformanceConsultant::render_condensed(r);
    EXPECT_TRUE(r.found("ExcessiveSyncWaitingTime", "MPI_Send"))
        << PerformanceConsultant::render_condensed(r);
    EXPECT_GT(r.experiments_run, 3);
}

TEST(Consultant, MpichSmallMessagesAlsoShowsIoBlocking) {
    // MPICH's socket transport surfaces as ExcessiveIOBlockingTime
    // (paper Fig 3); LAM's sysv RPI does not.
    Session s(Flavor::Mpich);
    ppm::register_all(s.world(), fast_params(150000));
    const PCReport r =
        s.run_with_consultant(ppm::kSmallMessages, 6, fast_opts());
    EXPECT_TRUE(r.found("ExcessiveIOBlockingTime", ""))
        << PerformanceConsultant::render_condensed(r);
}

TEST(Consultant, LamSmallMessagesShowsNoIoBlocking) {
    Session s(Flavor::Lam);
    ppm::register_all(s.world(), fast_params(150000));
    const PCReport r =
        s.run_with_consultant(ppm::kSmallMessages, 6, fast_opts());
    EXPECT_FALSE(r.found("ExcessiveIOBlockingTime", ""));
}

TEST(Consultant, FindsCpuBoundHotProcedure) {
    Session s(Flavor::Lam);
    ppm::Params p = fast_params(500);
    p.waste_unit_seconds = 0.001;
    ppm::register_all(s.world(), p);
    PerformanceConsultant::Options o = fast_opts();
    const PCReport r = s.run_with_consultant(ppm::kHotProcedure, 4, o);
    EXPECT_TRUE(r.found("CPUBound", "WholeProgram"))
        << PerformanceConsultant::render_condensed(r);
    EXPECT_TRUE(r.found("CPUBound", "bottleneckProcedure"))
        << PerformanceConsultant::render_condensed(r);
    // The decoys must not be blamed.
    EXPECT_FALSE(r.found("CPUBound", "irrelevantProcedure"));
    // And no synchronization bottleneck exists.
    EXPECT_FALSE(r.found("ExcessiveSyncWaitingTime", "MPI_"));
}

TEST(Consultant, SystemTimeProgramFailsAllHypotheses) {
    // Paper Table 2: "Paradyn showed all hypotheses as false. Paradyn
    // does not have default metrics specifically for system time."
    Session s(Flavor::Lam);
    ppm::Params p = fast_params(150);
    p.waste_unit_seconds = 0.004;
    ppm::register_all(s.world(), p);
    const PCReport r = s.run_with_consultant(ppm::kSystemTime, 4, fast_opts());
    for (const auto& root : r.roots) {
        EXPECT_TRUE(root->tested);
        EXPECT_FALSE(root->tested_true) << root->hypothesis;
    }
}

TEST(Consultant, FindsFenceWaitInWinfenceSync) {
    Session s(Flavor::Lam);
    const PCReport r = [&] {
        ppm::register_all(s.world(), fast_params(450));
        return s.run_with_consultant(ppm::kWinfenceSync, 4, fast_opts());
    }();
    EXPECT_TRUE(r.found("ExcessiveSyncWaitingTime", "Win_fence"))
        << PerformanceConsultant::render_condensed(r);
    // SyncObject-axis refinement reaches the responsible RMA window.
    EXPECT_TRUE(r.found("ExcessiveSyncWaitingTime", "/SyncObject/Window/"))
        << PerformanceConsultant::render_condensed(r);
}

TEST(Consultant, ProcessRefinementSeparatesServerFromClients) {
    Session s(Flavor::Lam);
    ppm::Params p = fast_params(120);
    p.time_to_waste = 3;
    ppm::register_all(s.world(), p);
    PerformanceConsultant::Options o = fast_opts();
    o.cpu_threshold = 0.4;
    const PCReport r = s.run_with_consultant(ppm::kIntensiveServer, 4, o);
    // Clients (not the server) wait in Grecv_message -> MPI_Recv.
    EXPECT_TRUE(r.found("ExcessiveSyncWaitingTime", "Grecv_message"))
        << PerformanceConsultant::render_condensed(r);
    // The server process is CPU bound.
    EXPECT_TRUE(r.found("CPUBound", "/Process/p0"))
        << PerformanceConsultant::render_condensed(r);
}

TEST(Consultant, RetiredWindowsAreNotSearchCandidates) {
    Session s(Flavor::Lam);
    ppm::Params p = fast_params(10);
    p.win_blast_count = 6;
    ppm::register_all(s.world(), p);
    s.run(ppm::kWincreateBlast, 2);
    // All windows retired; PC refinement over /SyncObject must skip them.
    PerformanceConsultant pc(s.tool(), fast_opts());
    const PCReport r = pc.search([] { return false; });  // no time: structure only
    EXPECT_TRUE(r.roots.empty() || !r.roots[0]->tested);
    EXPECT_TRUE(s.tool().hierarchy().children("/SyncObject/Window", false).empty());
}

TEST(Consultant, RenderCondensedShowsValuesAndThresholds) {
    Session s(Flavor::Lam);
    ppm::register_all(s.world(), fast_params(400));
    const PCReport r = s.run_with_consultant(ppm::kHotProcedure, 2, fast_opts());
    const std::string out = PerformanceConsultant::render_condensed(r);
    EXPECT_NE(out.find("CPUBound"), std::string::npos);
    EXPECT_NE(out.find("threshold"), std::string::npos);
    EXPECT_NE(out.find("WholeProgram"), std::string::npos);
}

}  // namespace
}  // namespace m2p::core
