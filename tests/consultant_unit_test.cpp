// Performance Consultant structural behaviour that the integration
// tests don't pin down: report queries, rendering of untested nodes,
// threshold plumbing, and search bounds.
#include <gtest/gtest.h>

#include "core/consultant.hpp"
#include "core/session.hpp"
#include "pperfmark/pperfmark.hpp"
#include "util/clock.hpp"

namespace m2p::core {
namespace {

std::unique_ptr<PCNode> node(const std::string& hyp, Focus f, bool tested,
                             bool is_true, double value = 0.5) {
    auto n = std::make_unique<PCNode>();
    n->hypothesis = hyp;
    n->focus = std::move(f);
    n->tested = tested;
    n->tested_true = is_true;
    n->value = value;
    n->threshold = 0.2;
    return n;
}

TEST(PcReport, FoundMatchesOnlyTrueTestedNodes) {
    PCReport r;
    Focus code;
    code.code = "/Code/app/hot";
    auto root = node("CPUBound", Focus{}, true, true);
    root->children.push_back(node("CPUBound", code, true, false));  // false child
    r.roots.push_back(std::move(root));
    EXPECT_TRUE(r.found("CPUBound", "WholeProgram"));
    EXPECT_FALSE(r.found("CPUBound", "hot"));          // tested false
    EXPECT_FALSE(r.found("ExcessiveSyncWaitingTime", ""));  // wrong hypothesis
}

TEST(PcReport, FoundSearchesDeepChildren) {
    PCReport r;
    Focus f1, f2;
    f1.code = "/Code/app/outer";
    f2.code = "/Code/app/outer/MPI_Send";
    auto root = node("ExcessiveSyncWaitingTime", Focus{}, true, true);
    auto mid = node("ExcessiveSyncWaitingTime", f1, true, true);
    mid->children.push_back(node("ExcessiveSyncWaitingTime", f2, true, true));
    root->children.push_back(std::move(mid));
    r.roots.push_back(std::move(root));
    EXPECT_TRUE(r.found("ExcessiveSyncWaitingTime", "outer/MPI_Send"));
}

TEST(PcRender, UntestedNodesAreMarked) {
    PCReport r;
    r.roots.push_back(node("CPUBound", Focus{}, false, false));
    const std::string out = PerformanceConsultant::render_condensed(r);
    EXPECT_NE(out.find("(untested)"), std::string::npos);
}

TEST(PcRender, FalseRootsCanBeSuppressed) {
    PCReport r;
    r.roots.push_back(node("CPUBound", Focus{}, true, false));
    EXPECT_NE(PerformanceConsultant::render_condensed(r, true).find("CPUBound"),
              std::string::npos);
    EXPECT_EQ(PerformanceConsultant::render_condensed(r, false).find("CPUBound"),
              std::string::npos);
}

TEST(PcRender, CompositeFocusShowsEveryRefinedAxis) {
    PCReport r;
    Focus f;
    f.code = "/Code/app/fn";
    f.syncobj = "/SyncObject/Message/comm_1";
    f.process = "/Process/p2";
    auto root = node("ExcessiveSyncWaitingTime", Focus{}, true, true);
    root->children.push_back(node("ExcessiveSyncWaitingTime", f, true, true));
    r.roots.push_back(std::move(root));
    const std::string out = PerformanceConsultant::render_condensed(r);
    EXPECT_NE(out.find("/Code/app/fn"), std::string::npos);
    EXPECT_NE(out.find("/SyncObject/Message/comm_1"), std::string::npos);
    EXPECT_NE(out.find("/Process/p2"), std::string::npos);
}

TEST(PcSearch, MaxSearchSecondsBoundsTheSearch) {
    // A program that outlives the search budget (~2 s of CPU burn vs a
    // 0.6 s budget): the wall-clock budget must cut the search off
    // while the application is still running.
    Session s(simmpi::Flavor::Lam);
    ppm::Params p;
    p.iterations = 1000;
    p.time_to_waste = 1;
    p.waste_unit_seconds = 0.001;
    ppm::register_all(s.world(), p);
    PerformanceConsultant::Options o;
    o.eval_interval = 0.05;
    o.max_search_seconds = 0.6;
    core::run_app_async(s.tool(), ppm::kHotProcedure, {}, 2);
    PerformanceConsultant pc(s.tool(), o);
    const double t0 = util::wall_seconds();
    const PCReport r = pc.search([&] { return !s.world().all_finished(); });
    EXPECT_LT(util::wall_seconds() - t0, 2.0);
    EXPECT_FALSE(s.world().all_finished()) << "workload should outlive the budget";
    EXPECT_LE(r.search_seconds, 1.0);
    EXPECT_GT(r.experiments_run, 0);
    s.world().join_all();  // the program ends on its own (~2 s)
}

TEST(PcSearch, ExplicitThresholdOverridesTunable) {
    Session s(simmpi::Flavor::Lam);
    ppm::Params p;
    p.iterations = 300;
    p.waste_unit_seconds = 0.001;
    ppm::register_all(s.world(), p);
    PerformanceConsultant::Options o;
    o.eval_interval = 0.05;
    o.max_search_seconds = 1.5;
    o.cpu_threshold = 1.5;  // impossible: nothing can exceed 1.5 CPUs/capacity
    const PCReport r = s.run_with_consultant(ppm::kHotProcedure, 2, o);
    EXPECT_FALSE(r.found("CPUBound", ""));
    for (const auto& root : r.roots)
        if (root->hypothesis == "CPUBound") EXPECT_DOUBLE_EQ(root->threshold, 1.5);
}

TEST(PcSearch, SearchWithNoRunningProgramTerminatesInstantly) {
    Session s(simmpi::Flavor::Lam);
    PerformanceConsultant pc(s.tool(), PerformanceConsultant::Options{});
    const PCReport r = pc.search([] { return false; });
    EXPECT_EQ(r.experiments_run, 0);
    ASSERT_EQ(r.roots.size(), 3u);
    for (const auto& root : r.roots) EXPECT_FALSE(root->tested);
}

}  // namespace
}  // namespace m2p::core
