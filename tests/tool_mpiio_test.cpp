// Tool support for MPI-I/O: metric exactness, file discovery, file
// constraint, and the Performance Consultant's I/O diagnosis.
#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/session.hpp"
#include "pperfmark/pperfmark.hpp"

namespace m2p::core {
namespace {

using simmpi::Flavor;

simmpi::World::Config paused_fast_fs() {
    simmpi::World::Config c;
    c.start_paused = true;
    c.file_latency_seconds = 1e-6;
    c.file_bandwidth_bytes_per_second = 10e9;
    return c;
}

TEST(MpiIoTool, ByteAndOpCountersMatchGroundTruth) {
    Session s(Flavor::Lam, {}, paused_fast_fs());
    ppm::Params p;
    p.io_rounds = 5;
    p.io_chunk_bytes = 4096;
    ppm::register_all(s.world(), p);
    run_app_async(s.tool(), ppm::kIoStripes, {}, 3);
    auto ops = s.tool().metrics().request("mpiio_ops", Focus{});
    auto written = s.tool().metrics().request("mpiio_bytes_written", Focus{});
    auto read = s.tool().metrics().request("mpiio_bytes_read", Focus{});
    s.world().release_start_gate();
    s.world().join_all();

    const ppm::IoTruth t = ppm::io_stripes_truth(p, 3);
    EXPECT_DOUBLE_EQ(ops->total(), static_cast<double>(t.ops));
    EXPECT_DOUBLE_EQ(written->total(), static_cast<double>(t.bytes_written));
    EXPECT_DOUBLE_EQ(read->total(), static_cast<double>(t.bytes_read));
    for (auto* pr : {&ops, &written, &read}) s.tool().metrics().release(*pr);
}

TEST(MpiIoTool, FilesAreDiscoveredNamedAndRetired) {
    Session s(Flavor::Lam, {}, [] {
        auto c = paused_fast_fs();
        c.start_paused = false;
        return c;
    }());
    ppm::Params p;
    p.io_rounds = 2;
    p.io_chunk_bytes = 256;
    ppm::register_all(s.world(), p);
    s.run(ppm::kIoStripes, 2);
    const auto files = s.tool().hierarchy().children("/SyncObject/File", true);
    ASSERT_EQ(files.size(), 1u);
    EXPECT_EQ(s.tool().hierarchy().get(files[0]).display, "pperfmark-stripes.dat");
    EXPECT_TRUE(s.tool().hierarchy().get(files[0]).retired);  // closed
}

TEST(MpiIoTool, FileConstraintIsolatesOneFile) {
    Session s(Flavor::Lam, {}, [] {
        auto c = paused_fast_fs();
        c.start_paused = false;
        return c;
    }());
    std::shared_ptr<MetricFocusPair> pair;
    constexpr int kWrites = 10;
    s.world().register_program("two-files", [&](simmpi::Rank& r,
                                                const std::vector<std::string>&) {
        r.MPI_Init();
        const simmpi::Comm w = r.MPI_COMM_WORLD();
        simmpi::File a = simmpi::MPI_FILE_NULL, b = simmpi::MPI_FILE_NULL;
        r.MPI_File_open(w, "a.dat", simmpi::MPI_MODE_CREATE | simmpi::MPI_MODE_RDWR,
                        simmpi::MPI_INFO_NULL, &a);
        r.MPI_File_open(w, "b.dat", simmpi::MPI_MODE_CREATE | simmpi::MPI_MODE_RDWR,
                        simmpi::MPI_INFO_NULL, &b);
        // Focus the byte counter on file "a" only.
        s.tool().flush();
        for (const auto& fpath : s.tool().hierarchy().children("/SyncObject/File", false)) {
            if (s.tool().hierarchy().get(fpath).display == "a.dat") {
                Focus f;
                f.syncobj = fpath;
                pair = s.tool().metrics().request("mpiio_bytes_written", f);
            }
        }
        char buf[100] = {};
        simmpi::Status st;
        for (int i = 0; i < kWrites; ++i) {
            r.MPI_File_write(a, buf, 100, simmpi::MPI_BYTE, &st);
            r.MPI_File_write(b, buf, 100, simmpi::MPI_BYTE, &st);
        }
        r.MPI_File_close(&a);
        r.MPI_File_close(&b);
        r.MPI_Finalize();
    });
    run_app_async(s.tool(), "two-files", {}, 1);
    s.world().join_all();
    ASSERT_NE(pair, nullptr);
    EXPECT_DOUBLE_EQ(pair->total(), 100.0 * kWrites);  // b.dat excluded
    s.tool().metrics().release(pair);
}

TEST(MpiIoTool, ConsultantDiagnosesCollectiveWriteStraggler) {
    Session s(Flavor::Lam);
    ppm::Params p;
    p.io_rounds = 20;
    p.io_chunk_bytes = 1 << 17;
    ppm::register_all(s.world(), p);
    PerformanceConsultant::Options o;
    o.eval_interval = 0.07;
    o.max_search_seconds = 5.0;
    const PCReport r = s.run_with_consultant(ppm::kIoBound, 4, o);
    EXPECT_TRUE(r.found("ExcessiveIOBlockingTime", ""))
        << PerformanceConsultant::render_condensed(r);
    EXPECT_TRUE(r.found("ExcessiveIOBlockingTime", "File_write_all"))
        << PerformanceConsultant::render_condensed(r);
    EXPECT_TRUE(r.found("ExcessiveIOBlockingTime", "/SyncObject/File/"))
        << PerformanceConsultant::render_condensed(r);
}

TEST(MpiIoTool, MpiioWaitSeesFileTime) {
    Session s(Flavor::Lam);
    ppm::Params p;
    p.io_rounds = 4;
    p.io_chunk_bytes = 1 << 16;
    ppm::register_all(s.world(), p);
    auto wait = s.tool().metrics().request("mpiio_wait", Focus{});
    s.run(ppm::kIoStripes, 2);
    EXPECT_GT(wait->total(), 0.0);
    s.tool().metrics().release(wait);
}

}  // namespace
}  // namespace m2p::core
