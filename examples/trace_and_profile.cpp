// Example: the companion tools -- MPE-style tracing with Jumpshot-like
// views, and the gprof-style flat profiler -- used the way the paper
// uses them: as independent cross-checks of the main tool's findings.
// Both now read the always-on flight recorder; the same run also
// exports a Chrome trace-event JSON (chrome://tracing / Perfetto).
#include <cstdio>

#include "core/session.hpp"
#include "pperfmark/pperfmark.hpp"
#include "prof/flat_profiler.hpp"
#include "trace/exporter.hpp"
#include "trace/mpe.hpp"

using namespace m2p;

int main() {
    core::Session session(simmpi::Flavor::Lam);
    ppm::Params params;
    params.iterations = 40;
    params.time_to_waste = 2;
    params.waste_unit_seconds = 0.003;
    ppm::register_all(session.world(), params);

    // Link the "MPE library" (instrumentation-based interval logger)
    // and attach the flat profiler to all application code.
    trace::MpeLogger mpe(session.world());
    prof::FlatProfiler profiler(session.registry());

    session.run(ppm::kRandomBarrier, 4);

    std::printf("== Jumpshot-style statistical preview ==\n");
    std::printf("avg processes in MPI_Barrier: %.2f of 4\n",
                trace::statistical_preview(mpe.log(), "MPI_Barrier"));

    std::printf("\n== Per-state totals (seconds across processes) ==\n");
    for (const auto& [state, seconds] : trace::state_totals(mpe.log()))
        std::printf("  %-16s %.3f\n", state.c_str(), seconds);

    std::printf("\n== Jumpshot-style time lines ==\n%s",
                trace::render_timelines(mpe.log(), 4, 72).c_str());

    std::printf("\n== gprof-style flat profile (application code) ==\n%s",
                profiler.render().c_str());

    // Chrome trace export: the flight recorder's rings, merged and
    // written as trace-event JSON next to this binary.
    if (const trace::FlightRecorder* fr = session.world().recorder()) {
        trace::Exporter exporter(*fr);
        if (exporter.write_files(session.world(), ".", "trace_and_profile",
                                 "example run"))
            std::printf("\nwrote trace_and_profile.trace.json (open in "
                        "chrome://tracing) and trace_and_profile.postmortem.txt\n");
    }
    return 0;
}
