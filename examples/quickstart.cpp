// Quickstart: measure an MPI application with the tool in ~40 lines.
//
// 1. Create a simulated cluster world (pick the MPI implementation).
// 2. Attach the tool (PerfTool) -- it parses the default MDL metric
//    file and installs its discovery instrumentation.
// 3. Register and launch a program; request a metric-focus pair.
// 4. Read the folding histogram / run the Performance Consultant.
#include <cstdio>

#include "core/consultant.hpp"
#include "core/metrics.hpp"
#include "core/tool.hpp"
#include "pperfmark/pperfmark.hpp"

int main() {
    using namespace m2p;

    instr::Registry registry;
    // Measurement sessions use the preemptive thread engine: the
    // PPerfMark bottleneck scenarios (and the sync-wait metric they
    // feed) rely on ranks progressing concurrently, which cooperative
    // fibers do not guarantee.  core::Session picks this default via
    // tool_world_config(); a raw World must opt in.
    simmpi::World world(registry, {.flavor = simmpi::Flavor::Lam,
                                   .rank_engine = simmpi::RankEngine::Thread});
    core::PerfTool tool(world);

    // Use a PPerfMark program as the "application": clients flood one
    // server with small messages.
    ppm::Params params;
    params.iterations = 250000;  // ~2s: enough for several PC refinement waves
    ppm::register_all(world, params);

    // The tool launches the MPI job itself (6 processes, 2 per node).
    core::run_app_async(tool, ppm::kSmallMessages, {}, /*nprocs=*/6);

    // Ask for a metric-focus pair: synchronization waiting time over
    // the whole program.
    auto pair = tool.metrics().request("sync_wait_inclusive", core::Focus{});

    // Let the Performance Consultant search for bottlenecks while the
    // application runs.
    core::PerformanceConsultant::Options opts;
    opts.eval_interval = 0.1;
    core::PerformanceConsultant pc(tool, opts);
    const core::PCReport report = pc.search([&] { return !world.all_finished(); });

    world.join_all();
    tool.flush();

    std::printf("== Condensed Performance Consultant findings ==\n%s\n",
                core::PerformanceConsultant::render_condensed(report).c_str());
    std::printf("sync_wait_inclusive total: %.3f CPU-seconds over %zu bins (width %.3fs)\n",
                pair->total(), pair->histogram().active_bins(),
                pair->histogram().bin_width());
    tool.metrics().release(pair);

    std::printf("\n== Resource hierarchy (SyncObject) ==\n%s\n",
                tool.hierarchy().render("/SyncObject").c_str());
    return 0;
}
