// Example: measuring a dynamically spawned worker pool.
//
// A coordinator spawns workers with MPI_Comm_spawn and farms tasks to
// them over the intercommunicator.  The tool's intercept method makes
// the new processes visible at run time (the paper's section 4.2.2),
// object naming labels the communicators, and the spawn-support
// statistics show the cost the intercept method adds.
#include <cstdio>
#include <vector>

#include "core/consultant.hpp"
#include "core/session.hpp"
#include "util/clock.hpp"

using namespace m2p;
using simmpi::Comm;

int main() {
    core::Session session(simmpi::Flavor::Lam);  // spawn needs LAM (paper 5.2.2)
    simmpi::World& world = session.world();
    constexpr int kWorkers = 3;
    constexpr int kTasks = 120;

    world.register_program("worker", [](simmpi::Rank& r,
                                        const std::vector<std::string>&) {
        r.MPI_Init();
        Comm boss = simmpi::MPI_COMM_NULL;
        r.MPI_Comm_get_parent(&boss);
        r.MPI_Comm_set_name(boss, "toCoordinator");
        for (;;) {
            std::int32_t task = 0;
            r.MPI_Recv(&task, 1, simmpi::MPI_INT, 0, simmpi::MPI_ANY_TAG, boss,
                       nullptr);
            if (task < 0) break;               // poison pill
            util::burn_thread_cpu(0.002);      // "work"
            const std::int32_t result = task * task;
            r.MPI_Send(&result, 1, simmpi::MPI_INT, 0, 1, boss);
        }
        r.MPI_Finalize();
    });

    world.register_program("coordinator", [](simmpi::Rank& r,
                                             const std::vector<std::string>&) {
        r.MPI_Init();
        Comm pool = simmpi::MPI_COMM_NULL;
        std::vector<int> errcodes;
        r.MPI_Comm_spawn("worker", {}, kWorkers, simmpi::MPI_INFO_NULL, 0,
                         r.MPI_COMM_WORLD(), &pool, &errcodes);
        r.MPI_Comm_set_name(pool, "WorkerPool");

        int next_worker = 0;
        long long checksum = 0;
        for (std::int32_t task = 1; task <= kTasks; ++task) {
            r.MPI_Send(&task, 1, simmpi::MPI_INT, next_worker, 0, pool);
            std::int32_t result = 0;
            simmpi::Status st;
            r.MPI_Recv(&result, 1, simmpi::MPI_INT, simmpi::MPI_ANY_SOURCE, 1, pool,
                       &st);
            checksum += result;
            next_worker = (next_worker + 1) % kWorkers;
        }
        const std::int32_t stop = -1;
        for (int w = 0; w < kWorkers; ++w)
            r.MPI_Send(&stop, 1, simmpi::MPI_INT, w, 0, pool);
        std::printf("coordinator: %d tasks done, checksum %lld\n", kTasks, checksum);
        r.MPI_Finalize();
    });

    core::PerformanceConsultant::Options opts;
    opts.eval_interval = 0.08;
    opts.max_search_seconds = 4.0;
    const core::PCReport report =
        session.run_with_consultant("coordinator", 1, opts);

    std::printf("\n== Process hierarchy after the spawn ==\n%s",
                session.tool().hierarchy().render("/Process").c_str());
    std::printf("\n== Named communicators ==\n%s",
                session.tool().hierarchy().render("/SyncObject/Message").c_str());

    const core::SpawnSupportStats& st = session.tool().spawn_stats();
    std::printf("\n== Spawn support (intercept method) ==\n");
    std::printf("spawns seen: %d, daemons started: %d, overhead: %.3f ms\n",
                st.spawns_seen, st.daemons_started,
                1e3 * st.intercept_overhead_seconds);

    std::printf("\n== Performance Consultant ==\n%s",
                core::PerformanceConsultant::render_condensed(report).c_str());
    return 0;
}
