// Example: diagnosing an MPI-2 one-sided application.
//
// A small producer/consumer app exchanges halo data through an RMA
// window under fence synchronization, with one deliberately slow rank.
// The example shows the paper's MPI-2 workflow end to end:
//  * RMA window discovery (N-M resource ids) and object naming,
//  * the Table-1 RMA metrics on a window-constrained focus,
//  * the Performance Consultant pinpointing the fence wait and the
//    slow rank.
#include <cstdio>
#include <vector>

#include "core/consultant.hpp"
#include "core/metrics.hpp"
#include "core/session.hpp"
#include "util/clock.hpp"

using namespace m2p;
using simmpi::Comm;
using simmpi::Win;

int main() {
    core::Session session(simmpi::Flavor::Mpich);
    simmpi::World& world = session.world();

    world.register_program("halo-app", [](simmpi::Rank& r,
                                          const std::vector<std::string>&) {
        r.MPI_Init();
        const Comm comm = r.MPI_COMM_WORLD();
        int me = 0, n = 0;
        r.MPI_Comm_rank(comm, &me);
        r.MPI_Comm_size(comm, &n);

        std::vector<double> halo(256, 0.0);
        Win win = simmpi::MPI_WIN_NULL;
        r.MPI_Win_create(halo.data(), static_cast<std::int64_t>(halo.size() * 8), 8,
                         simmpi::MPI_INFO_NULL, comm, &win);
        r.MPI_Win_set_name(win, "HaloWindow");

        std::vector<double> mine(64, static_cast<double>(me));
        for (int step = 0; step < 300; ++step) {
            // Rank 1 computes longer than everyone else: the classic
            // imbalance that surfaces as fence waiting time.
            util::burn_thread_cpu(me == 1 ? 0.004 : 0.0005);
            r.MPI_Win_fence(0, win);
            const int right = (me + 1) % n;
            r.MPI_Put(mine.data(), 64, simmpi::MPI_DOUBLE, right,
                      64 * (me % 4), 64, simmpi::MPI_DOUBLE, win);
            r.MPI_Win_fence(0, win);
        }
        r.MPI_Win_free(&win);
        r.MPI_Finalize();
    });

    // Request RMA metrics before the search so the full run is covered.
    auto puts = session.tool().metrics().request("rma_put_ops", core::Focus{});
    auto bytes = session.tool().metrics().request("rma_put_bytes", core::Focus{});
    auto fence_wait =
        session.tool().metrics().request("at_rma_sync_wait", core::Focus{});

    core::PerformanceConsultant::Options opts;
    opts.eval_interval = 0.1;
    opts.max_search_seconds = 5.0;
    const core::PCReport report =
        session.run_with_consultant("halo-app", 4, opts);

    std::printf("== Performance Consultant findings ==\n%s\n",
                core::PerformanceConsultant::render_condensed(report).c_str());
    std::printf("== RMA metrics (whole program) ==\n");
    std::printf("rma_put_ops      : %.0f\n", puts->total());
    std::printf("rma_put_bytes    : %.0f\n", bytes->total());
    std::printf("at_rma_sync_wait : %.3f CPU-seconds\n", fence_wait->total());

    std::printf("\n== Discovered windows ==\n%s",
                session.tool().hierarchy().render("/SyncObject/Window").c_str());

    session.tool().metrics().release(puts);
    session.tool().metrics().release(bytes);
    session.tool().metrics().release(fence_wait);
    return 0;
}
