file(REMOVE_RECURSE
  "../bench/bench_fig9_17_18_random_barrier"
  "../bench/bench_fig9_17_18_random_barrier.pdb"
  "CMakeFiles/bench_fig9_17_18_random_barrier.dir/bench_fig9_17_18_random_barrier.cpp.o"
  "CMakeFiles/bench_fig9_17_18_random_barrier.dir/bench_fig9_17_18_random_barrier.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_17_18_random_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
