# Empty dependencies file for bench_fig9_17_18_random_barrier.
# This may be replaced when dependencies are built.
