# Empty dependencies file for bench_fig14_15_16_diffuse_procedure.
# This may be replaced when dependencies are built.
