file(REMOVE_RECURSE
  "../bench/bench_fig14_15_16_diffuse_procedure"
  "../bench/bench_fig14_15_16_diffuse_procedure.pdb"
  "CMakeFiles/bench_fig14_15_16_diffuse_procedure.dir/bench_fig14_15_16_diffuse_procedure.cpp.o"
  "CMakeFiles/bench_fig14_15_16_diffuse_procedure.dir/bench_fig14_15_16_diffuse_procedure.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_15_16_diffuse_procedure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
