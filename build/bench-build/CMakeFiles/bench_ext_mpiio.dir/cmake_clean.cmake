file(REMOVE_RECURSE
  "../bench/bench_ext_mpiio"
  "../bench/bench_ext_mpiio.pdb"
  "CMakeFiles/bench_ext_mpiio.dir/bench_ext_mpiio.cpp.o"
  "CMakeFiles/bench_ext_mpiio.dir/bench_ext_mpiio.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_mpiio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
