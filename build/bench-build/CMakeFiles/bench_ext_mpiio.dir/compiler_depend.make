# Empty compiler generated dependencies file for bench_ext_mpiio.
# This may be replaced when dependencies are built.
