file(REMOVE_RECURSE
  "../bench/bench_fig19_20_hot_procedure"
  "../bench/bench_fig19_20_hot_procedure.pdb"
  "CMakeFiles/bench_fig19_20_hot_procedure.dir/bench_fig19_20_hot_procedure.cpp.o"
  "CMakeFiles/bench_fig19_20_hot_procedure.dir/bench_fig19_20_hot_procedure.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_20_hot_procedure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
