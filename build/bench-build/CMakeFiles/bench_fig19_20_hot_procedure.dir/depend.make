# Empty dependencies file for bench_fig19_20_hot_procedure.
# This may be replaced when dependencies are built.
