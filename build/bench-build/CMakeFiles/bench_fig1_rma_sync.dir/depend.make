# Empty dependencies file for bench_fig1_rma_sync.
# This may be replaced when dependencies are built.
