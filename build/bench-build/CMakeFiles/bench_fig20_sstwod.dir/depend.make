# Empty dependencies file for bench_fig20_sstwod.
# This may be replaced when dependencies are built.
