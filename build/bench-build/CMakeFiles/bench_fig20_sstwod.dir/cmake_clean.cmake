file(REMOVE_RECURSE
  "../bench/bench_fig20_sstwod"
  "../bench/bench_fig20_sstwod.pdb"
  "CMakeFiles/bench_fig20_sstwod.dir/bench_fig20_sstwod.cpp.o"
  "CMakeFiles/bench_fig20_sstwod.dir/bench_fig20_sstwod.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_sstwod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
