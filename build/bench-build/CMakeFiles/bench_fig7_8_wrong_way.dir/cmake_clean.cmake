file(REMOVE_RECURSE
  "../bench/bench_fig7_8_wrong_way"
  "../bench/bench_fig7_8_wrong_way.pdb"
  "CMakeFiles/bench_fig7_8_wrong_way.dir/bench_fig7_8_wrong_way.cpp.o"
  "CMakeFiles/bench_fig7_8_wrong_way.dir/bench_fig7_8_wrong_way.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_8_wrong_way.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
