# Empty dependencies file for bench_fig7_8_wrong_way.
# This may be replaced when dependencies are built.
