file(REMOVE_RECURSE
  "../bench/bench_fig23_24_spawn"
  "../bench/bench_fig23_24_spawn.pdb"
  "CMakeFiles/bench_fig23_24_spawn.dir/bench_fig23_24_spawn.cpp.o"
  "CMakeFiles/bench_fig23_24_spawn.dir/bench_fig23_24_spawn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig23_24_spawn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
