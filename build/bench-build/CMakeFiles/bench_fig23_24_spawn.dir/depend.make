# Empty dependencies file for bench_fig23_24_spawn.
# This may be replaced when dependencies are built.
