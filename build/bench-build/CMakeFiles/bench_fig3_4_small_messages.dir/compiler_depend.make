# Empty compiler generated dependencies file for bench_fig3_4_small_messages.
# This may be replaced when dependencies are built.
