file(REMOVE_RECURSE
  "../bench/bench_fig3_4_small_messages"
  "../bench/bench_fig3_4_small_messages.pdb"
  "CMakeFiles/bench_fig3_4_small_messages.dir/bench_fig3_4_small_messages.cpp.o"
  "CMakeFiles/bench_fig3_4_small_messages.dir/bench_fig3_4_small_messages.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_4_small_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
