# Empty dependencies file for bench_presta_rma.
# This may be replaced when dependencies are built.
