file(REMOVE_RECURSE
  "../bench/bench_presta_rma"
  "../bench/bench_presta_rma.pdb"
  "CMakeFiles/bench_presta_rma.dir/bench_presta_rma.cpp.o"
  "CMakeFiles/bench_presta_rma.dir/bench_presta_rma.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_presta_rma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
