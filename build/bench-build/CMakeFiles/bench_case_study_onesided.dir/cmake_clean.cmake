file(REMOVE_RECURSE
  "../bench/bench_case_study_onesided"
  "../bench/bench_case_study_onesided.pdb"
  "CMakeFiles/bench_case_study_onesided.dir/bench_case_study_onesided.cpp.o"
  "CMakeFiles/bench_case_study_onesided.dir/bench_case_study_onesided.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_case_study_onesided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
