# Empty dependencies file for bench_case_study_onesided.
# This may be replaced when dependencies are built.
