file(REMOVE_RECURSE
  "../bench/bench_fig21_winscpwsync"
  "../bench/bench_fig21_winscpwsync.pdb"
  "CMakeFiles/bench_fig21_winscpwsync.dir/bench_fig21_winscpwsync.cpp.o"
  "CMakeFiles/bench_fig21_winscpwsync.dir/bench_fig21_winscpwsync.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_winscpwsync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
