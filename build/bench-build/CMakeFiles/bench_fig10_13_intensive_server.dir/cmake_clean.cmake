file(REMOVE_RECURSE
  "../bench/bench_fig10_13_intensive_server"
  "../bench/bench_fig10_13_intensive_server.pdb"
  "CMakeFiles/bench_fig10_13_intensive_server.dir/bench_fig10_13_intensive_server.cpp.o"
  "CMakeFiles/bench_fig10_13_intensive_server.dir/bench_fig10_13_intensive_server.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_13_intensive_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
