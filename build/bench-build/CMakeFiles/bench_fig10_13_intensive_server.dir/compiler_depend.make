# Empty compiler generated dependencies file for bench_fig10_13_intensive_server.
# This may be replaced when dependencies are built.
