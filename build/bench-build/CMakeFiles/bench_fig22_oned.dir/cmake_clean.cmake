file(REMOVE_RECURSE
  "../bench/bench_fig22_oned"
  "../bench/bench_fig22_oned.pdb"
  "CMakeFiles/bench_fig22_oned.dir/bench_fig22_oned.cpp.o"
  "CMakeFiles/bench_fig22_oned.dir/bench_fig22_oned.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_oned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
