# Empty dependencies file for bench_fig5_6_big_message.
# This may be replaced when dependencies are built.
