file(REMOVE_RECURSE
  "../bench/bench_fig5_6_big_message"
  "../bench/bench_fig5_6_big_message.pdb"
  "CMakeFiles/bench_fig5_6_big_message.dir/bench_fig5_6_big_message.cpp.o"
  "CMakeFiles/bench_fig5_6_big_message.dir/bench_fig5_6_big_message.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_6_big_message.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
