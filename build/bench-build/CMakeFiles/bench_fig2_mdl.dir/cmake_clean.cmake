file(REMOVE_RECURSE
  "../bench/bench_fig2_mdl"
  "../bench/bench_fig2_mdl.pdb"
  "CMakeFiles/bench_fig2_mdl.dir/bench_fig2_mdl.cpp.o"
  "CMakeFiles/bench_fig2_mdl.dir/bench_fig2_mdl.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_mdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
