# Empty dependencies file for bench_table3_pperfmark_mpi2.
# This may be replaced when dependencies are built.
