file(REMOVE_RECURSE
  "../bench/bench_ablation_histogram_folding"
  "../bench/bench_ablation_histogram_folding.pdb"
  "CMakeFiles/bench_ablation_histogram_folding.dir/bench_ablation_histogram_folding.cpp.o"
  "CMakeFiles/bench_ablation_histogram_folding.dir/bench_ablation_histogram_folding.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_histogram_folding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
