# Empty dependencies file for bench_ablation_histogram_folding.
# This may be replaced when dependencies are built.
