# Empty compiler generated dependencies file for bench_ablation_spawn_overhead.
# This may be replaced when dependencies are built.
