file(REMOVE_RECURSE
  "../bench/bench_ablation_spawn_overhead"
  "../bench/bench_ablation_spawn_overhead.pdb"
  "CMakeFiles/bench_ablation_spawn_overhead.dir/bench_ablation_spawn_overhead.cpp.o"
  "CMakeFiles/bench_ablation_spawn_overhead.dir/bench_ablation_spawn_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_spawn_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
