# Empty compiler generated dependencies file for bench_ablation_instrumentation.
# This may be replaced when dependencies are built.
