file(REMOVE_RECURSE
  "../bench/bench_ablation_instrumentation"
  "../bench/bench_ablation_instrumentation.pdb"
  "CMakeFiles/bench_ablation_instrumentation.dir/bench_ablation_instrumentation.cpp.o"
  "CMakeFiles/bench_ablation_instrumentation.dir/bench_ablation_instrumentation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_instrumentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
