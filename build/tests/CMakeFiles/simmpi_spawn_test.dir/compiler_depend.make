# Empty compiler generated dependencies file for simmpi_spawn_test.
# This may be replaced when dependencies are built.
