file(REMOVE_RECURSE
  "CMakeFiles/simmpi_spawn_test.dir/simmpi_spawn_test.cpp.o"
  "CMakeFiles/simmpi_spawn_test.dir/simmpi_spawn_test.cpp.o.d"
  "simmpi_spawn_test"
  "simmpi_spawn_test.pdb"
  "simmpi_spawn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simmpi_spawn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
