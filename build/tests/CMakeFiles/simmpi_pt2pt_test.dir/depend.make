# Empty dependencies file for simmpi_pt2pt_test.
# This may be replaced when dependencies are built.
