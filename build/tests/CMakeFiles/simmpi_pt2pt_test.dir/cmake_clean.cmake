file(REMOVE_RECURSE
  "CMakeFiles/simmpi_pt2pt_test.dir/simmpi_pt2pt_test.cpp.o"
  "CMakeFiles/simmpi_pt2pt_test.dir/simmpi_pt2pt_test.cpp.o.d"
  "simmpi_pt2pt_test"
  "simmpi_pt2pt_test.pdb"
  "simmpi_pt2pt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simmpi_pt2pt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
