file(REMOVE_RECURSE
  "CMakeFiles/simmpi_world_test.dir/simmpi_world_test.cpp.o"
  "CMakeFiles/simmpi_world_test.dir/simmpi_world_test.cpp.o.d"
  "simmpi_world_test"
  "simmpi_world_test.pdb"
  "simmpi_world_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simmpi_world_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
