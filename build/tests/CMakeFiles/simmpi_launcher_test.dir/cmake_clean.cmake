file(REMOVE_RECURSE
  "CMakeFiles/simmpi_launcher_test.dir/simmpi_launcher_test.cpp.o"
  "CMakeFiles/simmpi_launcher_test.dir/simmpi_launcher_test.cpp.o.d"
  "simmpi_launcher_test"
  "simmpi_launcher_test.pdb"
  "simmpi_launcher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simmpi_launcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
