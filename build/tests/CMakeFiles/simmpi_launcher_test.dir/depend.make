# Empty dependencies file for simmpi_launcher_test.
# This may be replaced when dependencies are built.
