# Empty compiler generated dependencies file for mdl_parser_test.
# This may be replaced when dependencies are built.
