file(REMOVE_RECURSE
  "CMakeFiles/mdl_parser_test.dir/mdl_parser_test.cpp.o"
  "CMakeFiles/mdl_parser_test.dir/mdl_parser_test.cpp.o.d"
  "mdl_parser_test"
  "mdl_parser_test.pdb"
  "mdl_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdl_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
