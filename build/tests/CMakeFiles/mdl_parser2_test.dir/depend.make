# Empty dependencies file for mdl_parser2_test.
# This may be replaced when dependencies are built.
