file(REMOVE_RECURSE
  "CMakeFiles/simmpi_misc_test.dir/simmpi_misc_test.cpp.o"
  "CMakeFiles/simmpi_misc_test.dir/simmpi_misc_test.cpp.o.d"
  "simmpi_misc_test"
  "simmpi_misc_test.pdb"
  "simmpi_misc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simmpi_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
