# Empty compiler generated dependencies file for presta_test.
# This may be replaced when dependencies are built.
