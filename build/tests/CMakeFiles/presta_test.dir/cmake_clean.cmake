file(REMOVE_RECURSE
  "CMakeFiles/presta_test.dir/presta_test.cpp.o"
  "CMakeFiles/presta_test.dir/presta_test.cpp.o.d"
  "presta_test"
  "presta_test.pdb"
  "presta_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
