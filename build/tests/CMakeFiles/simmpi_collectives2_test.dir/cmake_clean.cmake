file(REMOVE_RECURSE
  "CMakeFiles/simmpi_collectives2_test.dir/simmpi_collectives2_test.cpp.o"
  "CMakeFiles/simmpi_collectives2_test.dir/simmpi_collectives2_test.cpp.o.d"
  "simmpi_collectives2_test"
  "simmpi_collectives2_test.pdb"
  "simmpi_collectives2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simmpi_collectives2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
