# Empty dependencies file for simmpi_collectives2_test.
# This may be replaced when dependencies are built.
