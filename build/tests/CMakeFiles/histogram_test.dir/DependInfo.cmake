
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/histogram_test.cpp" "tests/CMakeFiles/histogram_test.dir/histogram_test.cpp.o" "gcc" "tests/CMakeFiles/histogram_test.dir/histogram_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/m2p_core.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/m2p_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/mdl/CMakeFiles/m2p_mdl.dir/DependInfo.cmake"
  "/root/repo/build/src/instr/CMakeFiles/m2p_instr.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/m2p_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/m2p_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/prof/CMakeFiles/m2p_prof.dir/DependInfo.cmake"
  "/root/repo/build/src/pperfmark/CMakeFiles/m2p_pperfmark.dir/DependInfo.cmake"
  "/root/repo/build/src/presta/CMakeFiles/m2p_presta.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
