file(REMOVE_RECURSE
  "CMakeFiles/mdl_eval_test.dir/mdl_eval_test.cpp.o"
  "CMakeFiles/mdl_eval_test.dir/mdl_eval_test.cpp.o.d"
  "mdl_eval_test"
  "mdl_eval_test.pdb"
  "mdl_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdl_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
