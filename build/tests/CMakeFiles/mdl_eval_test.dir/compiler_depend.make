# Empty compiler generated dependencies file for mdl_eval_test.
# This may be replaced when dependencies are built.
