# Empty compiler generated dependencies file for pperfmark_test.
# This may be replaced when dependencies are built.
