file(REMOVE_RECURSE
  "CMakeFiles/pperfmark_test.dir/pperfmark_test.cpp.o"
  "CMakeFiles/pperfmark_test.dir/pperfmark_test.cpp.o.d"
  "pperfmark_test"
  "pperfmark_test.pdb"
  "pperfmark_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pperfmark_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
