# Empty dependencies file for simmpi_io_test.
# This may be replaced when dependencies are built.
