file(REMOVE_RECURSE
  "CMakeFiles/simmpi_io_test.dir/simmpi_io_test.cpp.o"
  "CMakeFiles/simmpi_io_test.dir/simmpi_io_test.cpp.o.d"
  "simmpi_io_test"
  "simmpi_io_test.pdb"
  "simmpi_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simmpi_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
