file(REMOVE_RECURSE
  "CMakeFiles/tool_mpiio_test.dir/tool_mpiio_test.cpp.o"
  "CMakeFiles/tool_mpiio_test.dir/tool_mpiio_test.cpp.o.d"
  "tool_mpiio_test"
  "tool_mpiio_test.pdb"
  "tool_mpiio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_mpiio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
