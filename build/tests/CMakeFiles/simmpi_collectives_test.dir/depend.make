# Empty dependencies file for simmpi_collectives_test.
# This may be replaced when dependencies are built.
