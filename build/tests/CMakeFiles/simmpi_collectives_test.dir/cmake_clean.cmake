file(REMOVE_RECURSE
  "CMakeFiles/simmpi_collectives_test.dir/simmpi_collectives_test.cpp.o"
  "CMakeFiles/simmpi_collectives_test.dir/simmpi_collectives_test.cpp.o.d"
  "simmpi_collectives_test"
  "simmpi_collectives_test.pdb"
  "simmpi_collectives_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simmpi_collectives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
