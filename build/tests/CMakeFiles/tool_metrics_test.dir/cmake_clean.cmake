file(REMOVE_RECURSE
  "CMakeFiles/tool_metrics_test.dir/tool_metrics_test.cpp.o"
  "CMakeFiles/tool_metrics_test.dir/tool_metrics_test.cpp.o.d"
  "tool_metrics_test"
  "tool_metrics_test.pdb"
  "tool_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
