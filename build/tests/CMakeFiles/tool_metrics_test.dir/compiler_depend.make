# Empty compiler generated dependencies file for tool_metrics_test.
# This may be replaced when dependencies are built.
