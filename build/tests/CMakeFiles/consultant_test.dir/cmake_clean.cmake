file(REMOVE_RECURSE
  "CMakeFiles/consultant_test.dir/consultant_test.cpp.o"
  "CMakeFiles/consultant_test.dir/consultant_test.cpp.o.d"
  "consultant_test"
  "consultant_test.pdb"
  "consultant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consultant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
