# Empty compiler generated dependencies file for consultant_test.
# This may be replaced when dependencies are built.
