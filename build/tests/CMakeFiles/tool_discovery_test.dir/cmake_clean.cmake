file(REMOVE_RECURSE
  "CMakeFiles/tool_discovery_test.dir/tool_discovery_test.cpp.o"
  "CMakeFiles/tool_discovery_test.dir/tool_discovery_test.cpp.o.d"
  "tool_discovery_test"
  "tool_discovery_test.pdb"
  "tool_discovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_discovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
