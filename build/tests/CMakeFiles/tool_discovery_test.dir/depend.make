# Empty dependencies file for tool_discovery_test.
# This may be replaced when dependencies are built.
