# Empty compiler generated dependencies file for tool_config_test.
# This may be replaced when dependencies are built.
