file(REMOVE_RECURSE
  "CMakeFiles/tool_config_test.dir/tool_config_test.cpp.o"
  "CMakeFiles/tool_config_test.dir/tool_config_test.cpp.o.d"
  "tool_config_test"
  "tool_config_test.pdb"
  "tool_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
