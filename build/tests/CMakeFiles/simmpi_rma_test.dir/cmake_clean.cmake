file(REMOVE_RECURSE
  "CMakeFiles/simmpi_rma_test.dir/simmpi_rma_test.cpp.o"
  "CMakeFiles/simmpi_rma_test.dir/simmpi_rma_test.cpp.o.d"
  "simmpi_rma_test"
  "simmpi_rma_test.pdb"
  "simmpi_rma_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simmpi_rma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
