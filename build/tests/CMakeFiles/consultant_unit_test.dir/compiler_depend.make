# Empty compiler generated dependencies file for consultant_unit_test.
# This may be replaced when dependencies are built.
