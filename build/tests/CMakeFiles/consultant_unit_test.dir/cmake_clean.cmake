file(REMOVE_RECURSE
  "CMakeFiles/consultant_unit_test.dir/consultant_unit_test.cpp.o"
  "CMakeFiles/consultant_unit_test.dir/consultant_unit_test.cpp.o.d"
  "consultant_unit_test"
  "consultant_unit_test.pdb"
  "consultant_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consultant_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
