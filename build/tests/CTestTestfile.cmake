# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/instr_test[1]_include.cmake")
include("/root/repo/build/tests/histogram_test[1]_include.cmake")
include("/root/repo/build/tests/resources_test[1]_include.cmake")
include("/root/repo/build/tests/mdl_parser_test[1]_include.cmake")
include("/root/repo/build/tests/simmpi_pt2pt_test[1]_include.cmake")
include("/root/repo/build/tests/simmpi_collectives_test[1]_include.cmake")
include("/root/repo/build/tests/simmpi_rma_test[1]_include.cmake")
include("/root/repo/build/tests/simmpi_spawn_test[1]_include.cmake")
include("/root/repo/build/tests/simmpi_launcher_test[1]_include.cmake")
include("/root/repo/build/tests/tool_discovery_test[1]_include.cmake")
include("/root/repo/build/tests/tool_metrics_test[1]_include.cmake")
include("/root/repo/build/tests/consultant_test[1]_include.cmake")
include("/root/repo/build/tests/mdl_eval_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/prof_test[1]_include.cmake")
include("/root/repo/build/tests/pperfmark_test[1]_include.cmake")
include("/root/repo/build/tests/presta_test[1]_include.cmake")
include("/root/repo/build/tests/simmpi_world_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/simmpi_io_test[1]_include.cmake")
include("/root/repo/build/tests/tool_mpiio_test[1]_include.cmake")
include("/root/repo/build/tests/simmpi_misc_test[1]_include.cmake")
include("/root/repo/build/tests/tool_config_test[1]_include.cmake")
include("/root/repo/build/tests/simmpi_collectives2_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/mdl_parser2_test[1]_include.cmake")
include("/root/repo/build/tests/consultant_unit_test[1]_include.cmake")
