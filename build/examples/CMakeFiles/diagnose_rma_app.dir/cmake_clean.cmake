file(REMOVE_RECURSE
  "CMakeFiles/diagnose_rma_app.dir/diagnose_rma_app.cpp.o"
  "CMakeFiles/diagnose_rma_app.dir/diagnose_rma_app.cpp.o.d"
  "diagnose_rma_app"
  "diagnose_rma_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnose_rma_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
