# Empty compiler generated dependencies file for diagnose_rma_app.
# This may be replaced when dependencies are built.
