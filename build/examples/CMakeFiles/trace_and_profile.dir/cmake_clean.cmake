file(REMOVE_RECURSE
  "CMakeFiles/trace_and_profile.dir/trace_and_profile.cpp.o"
  "CMakeFiles/trace_and_profile.dir/trace_and_profile.cpp.o.d"
  "trace_and_profile"
  "trace_and_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_and_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
