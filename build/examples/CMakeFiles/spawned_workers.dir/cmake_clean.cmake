file(REMOVE_RECURSE
  "CMakeFiles/spawned_workers.dir/spawned_workers.cpp.o"
  "CMakeFiles/spawned_workers.dir/spawned_workers.cpp.o.d"
  "spawned_workers"
  "spawned_workers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spawned_workers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
