file(REMOVE_RECURSE
  "libm2p_core.a"
)
