file(REMOVE_RECURSE
  "CMakeFiles/m2p_core.dir/consultant.cpp.o"
  "CMakeFiles/m2p_core.dir/consultant.cpp.o.d"
  "CMakeFiles/m2p_core.dir/histogram.cpp.o"
  "CMakeFiles/m2p_core.dir/histogram.cpp.o.d"
  "CMakeFiles/m2p_core.dir/metrics.cpp.o"
  "CMakeFiles/m2p_core.dir/metrics.cpp.o.d"
  "CMakeFiles/m2p_core.dir/resources.cpp.o"
  "CMakeFiles/m2p_core.dir/resources.cpp.o.d"
  "CMakeFiles/m2p_core.dir/session.cpp.o"
  "CMakeFiles/m2p_core.dir/session.cpp.o.d"
  "CMakeFiles/m2p_core.dir/tool.cpp.o"
  "CMakeFiles/m2p_core.dir/tool.cpp.o.d"
  "libm2p_core.a"
  "libm2p_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2p_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
