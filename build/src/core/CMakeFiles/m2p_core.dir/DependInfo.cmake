
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/consultant.cpp" "src/core/CMakeFiles/m2p_core.dir/consultant.cpp.o" "gcc" "src/core/CMakeFiles/m2p_core.dir/consultant.cpp.o.d"
  "/root/repo/src/core/histogram.cpp" "src/core/CMakeFiles/m2p_core.dir/histogram.cpp.o" "gcc" "src/core/CMakeFiles/m2p_core.dir/histogram.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/m2p_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/m2p_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/resources.cpp" "src/core/CMakeFiles/m2p_core.dir/resources.cpp.o" "gcc" "src/core/CMakeFiles/m2p_core.dir/resources.cpp.o.d"
  "/root/repo/src/core/session.cpp" "src/core/CMakeFiles/m2p_core.dir/session.cpp.o" "gcc" "src/core/CMakeFiles/m2p_core.dir/session.cpp.o.d"
  "/root/repo/src/core/tool.cpp" "src/core/CMakeFiles/m2p_core.dir/tool.cpp.o" "gcc" "src/core/CMakeFiles/m2p_core.dir/tool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mdl/CMakeFiles/m2p_mdl.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/m2p_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/instr/CMakeFiles/m2p_instr.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/m2p_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
