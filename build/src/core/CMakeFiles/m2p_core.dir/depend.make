# Empty dependencies file for m2p_core.
# This may be replaced when dependencies are built.
