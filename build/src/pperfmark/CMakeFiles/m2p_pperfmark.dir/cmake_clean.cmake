file(REMOVE_RECURSE
  "CMakeFiles/m2p_pperfmark.dir/pperfmark.cpp.o"
  "CMakeFiles/m2p_pperfmark.dir/pperfmark.cpp.o.d"
  "CMakeFiles/m2p_pperfmark.dir/programs_io.cpp.o"
  "CMakeFiles/m2p_pperfmark.dir/programs_io.cpp.o.d"
  "CMakeFiles/m2p_pperfmark.dir/programs_mpi1.cpp.o"
  "CMakeFiles/m2p_pperfmark.dir/programs_mpi1.cpp.o.d"
  "CMakeFiles/m2p_pperfmark.dir/programs_mpi2.cpp.o"
  "CMakeFiles/m2p_pperfmark.dir/programs_mpi2.cpp.o.d"
  "libm2p_pperfmark.a"
  "libm2p_pperfmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2p_pperfmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
