# Empty compiler generated dependencies file for m2p_pperfmark.
# This may be replaced when dependencies are built.
