file(REMOVE_RECURSE
  "libm2p_pperfmark.a"
)
