
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pperfmark/pperfmark.cpp" "src/pperfmark/CMakeFiles/m2p_pperfmark.dir/pperfmark.cpp.o" "gcc" "src/pperfmark/CMakeFiles/m2p_pperfmark.dir/pperfmark.cpp.o.d"
  "/root/repo/src/pperfmark/programs_io.cpp" "src/pperfmark/CMakeFiles/m2p_pperfmark.dir/programs_io.cpp.o" "gcc" "src/pperfmark/CMakeFiles/m2p_pperfmark.dir/programs_io.cpp.o.d"
  "/root/repo/src/pperfmark/programs_mpi1.cpp" "src/pperfmark/CMakeFiles/m2p_pperfmark.dir/programs_mpi1.cpp.o" "gcc" "src/pperfmark/CMakeFiles/m2p_pperfmark.dir/programs_mpi1.cpp.o.d"
  "/root/repo/src/pperfmark/programs_mpi2.cpp" "src/pperfmark/CMakeFiles/m2p_pperfmark.dir/programs_mpi2.cpp.o" "gcc" "src/pperfmark/CMakeFiles/m2p_pperfmark.dir/programs_mpi2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simmpi/CMakeFiles/m2p_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/instr/CMakeFiles/m2p_instr.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/m2p_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
