# Empty compiler generated dependencies file for m2p_trace.
# This may be replaced when dependencies are built.
