file(REMOVE_RECURSE
  "libm2p_trace.a"
)
