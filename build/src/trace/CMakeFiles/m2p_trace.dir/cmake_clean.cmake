file(REMOVE_RECURSE
  "CMakeFiles/m2p_trace.dir/mpe.cpp.o"
  "CMakeFiles/m2p_trace.dir/mpe.cpp.o.d"
  "libm2p_trace.a"
  "libm2p_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2p_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
