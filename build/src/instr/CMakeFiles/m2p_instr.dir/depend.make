# Empty dependencies file for m2p_instr.
# This may be replaced when dependencies are built.
