file(REMOVE_RECURSE
  "libm2p_instr.a"
)
