file(REMOVE_RECURSE
  "CMakeFiles/m2p_instr.dir/registry.cpp.o"
  "CMakeFiles/m2p_instr.dir/registry.cpp.o.d"
  "libm2p_instr.a"
  "libm2p_instr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2p_instr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
