file(REMOVE_RECURSE
  "libm2p_prof.a"
)
