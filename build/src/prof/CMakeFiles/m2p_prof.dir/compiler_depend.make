# Empty compiler generated dependencies file for m2p_prof.
# This may be replaced when dependencies are built.
