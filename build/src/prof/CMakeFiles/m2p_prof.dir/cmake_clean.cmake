file(REMOVE_RECURSE
  "CMakeFiles/m2p_prof.dir/flat_profiler.cpp.o"
  "CMakeFiles/m2p_prof.dir/flat_profiler.cpp.o.d"
  "libm2p_prof.a"
  "libm2p_prof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2p_prof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
