# Empty dependencies file for m2p_mdl.
# This may be replaced when dependencies are built.
