file(REMOVE_RECURSE
  "libm2p_mdl.a"
)
