file(REMOVE_RECURSE
  "CMakeFiles/m2p_mdl.dir/default_metrics.cpp.o"
  "CMakeFiles/m2p_mdl.dir/default_metrics.cpp.o.d"
  "CMakeFiles/m2p_mdl.dir/eval.cpp.o"
  "CMakeFiles/m2p_mdl.dir/eval.cpp.o.d"
  "CMakeFiles/m2p_mdl.dir/parser.cpp.o"
  "CMakeFiles/m2p_mdl.dir/parser.cpp.o.d"
  "libm2p_mdl.a"
  "libm2p_mdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2p_mdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
