
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mdl/default_metrics.cpp" "src/mdl/CMakeFiles/m2p_mdl.dir/default_metrics.cpp.o" "gcc" "src/mdl/CMakeFiles/m2p_mdl.dir/default_metrics.cpp.o.d"
  "/root/repo/src/mdl/eval.cpp" "src/mdl/CMakeFiles/m2p_mdl.dir/eval.cpp.o" "gcc" "src/mdl/CMakeFiles/m2p_mdl.dir/eval.cpp.o.d"
  "/root/repo/src/mdl/parser.cpp" "src/mdl/CMakeFiles/m2p_mdl.dir/parser.cpp.o" "gcc" "src/mdl/CMakeFiles/m2p_mdl.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/instr/CMakeFiles/m2p_instr.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/m2p_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
