file(REMOVE_RECURSE
  "libm2p_util.a"
)
