file(REMOVE_RECURSE
  "CMakeFiles/m2p_util.dir/ascii_chart.cpp.o"
  "CMakeFiles/m2p_util.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/m2p_util.dir/clock.cpp.o"
  "CMakeFiles/m2p_util.dir/clock.cpp.o.d"
  "CMakeFiles/m2p_util.dir/stats.cpp.o"
  "CMakeFiles/m2p_util.dir/stats.cpp.o.d"
  "CMakeFiles/m2p_util.dir/text_table.cpp.o"
  "CMakeFiles/m2p_util.dir/text_table.cpp.o.d"
  "libm2p_util.a"
  "libm2p_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2p_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
