# Empty dependencies file for m2p_util.
# This may be replaced when dependencies are built.
