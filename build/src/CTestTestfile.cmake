# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("instr")
subdirs("simmpi")
subdirs("mdl")
subdirs("core")
subdirs("trace")
subdirs("prof")
subdirs("pperfmark")
subdirs("presta")
