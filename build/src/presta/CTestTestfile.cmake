# CMake generated Testfile for 
# Source directory: /root/repo/src/presta
# Build directory: /root/repo/build/src/presta
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
