file(REMOVE_RECURSE
  "CMakeFiles/m2p_presta.dir/presta.cpp.o"
  "CMakeFiles/m2p_presta.dir/presta.cpp.o.d"
  "libm2p_presta.a"
  "libm2p_presta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2p_presta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
