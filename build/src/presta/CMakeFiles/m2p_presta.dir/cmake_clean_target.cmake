file(REMOVE_RECURSE
  "libm2p_presta.a"
)
