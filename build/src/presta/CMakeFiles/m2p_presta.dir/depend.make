# Empty dependencies file for m2p_presta.
# This may be replaced when dependencies are built.
