file(REMOVE_RECURSE
  "CMakeFiles/m2p_simmpi.dir/launcher.cpp.o"
  "CMakeFiles/m2p_simmpi.dir/launcher.cpp.o.d"
  "CMakeFiles/m2p_simmpi.dir/rank.cpp.o"
  "CMakeFiles/m2p_simmpi.dir/rank.cpp.o.d"
  "CMakeFiles/m2p_simmpi.dir/rank_io.cpp.o"
  "CMakeFiles/m2p_simmpi.dir/rank_io.cpp.o.d"
  "CMakeFiles/m2p_simmpi.dir/rank_rma.cpp.o"
  "CMakeFiles/m2p_simmpi.dir/rank_rma.cpp.o.d"
  "CMakeFiles/m2p_simmpi.dir/world.cpp.o"
  "CMakeFiles/m2p_simmpi.dir/world.cpp.o.d"
  "libm2p_simmpi.a"
  "libm2p_simmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2p_simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
