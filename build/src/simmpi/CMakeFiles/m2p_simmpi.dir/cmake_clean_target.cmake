file(REMOVE_RECURSE
  "libm2p_simmpi.a"
)
