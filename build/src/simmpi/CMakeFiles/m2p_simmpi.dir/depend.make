# Empty dependencies file for m2p_simmpi.
# This may be replaced when dependencies are built.
