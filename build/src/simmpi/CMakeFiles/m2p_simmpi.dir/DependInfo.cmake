
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simmpi/launcher.cpp" "src/simmpi/CMakeFiles/m2p_simmpi.dir/launcher.cpp.o" "gcc" "src/simmpi/CMakeFiles/m2p_simmpi.dir/launcher.cpp.o.d"
  "/root/repo/src/simmpi/rank.cpp" "src/simmpi/CMakeFiles/m2p_simmpi.dir/rank.cpp.o" "gcc" "src/simmpi/CMakeFiles/m2p_simmpi.dir/rank.cpp.o.d"
  "/root/repo/src/simmpi/rank_io.cpp" "src/simmpi/CMakeFiles/m2p_simmpi.dir/rank_io.cpp.o" "gcc" "src/simmpi/CMakeFiles/m2p_simmpi.dir/rank_io.cpp.o.d"
  "/root/repo/src/simmpi/rank_rma.cpp" "src/simmpi/CMakeFiles/m2p_simmpi.dir/rank_rma.cpp.o" "gcc" "src/simmpi/CMakeFiles/m2p_simmpi.dir/rank_rma.cpp.o.d"
  "/root/repo/src/simmpi/world.cpp" "src/simmpi/CMakeFiles/m2p_simmpi.dir/world.cpp.o" "gcc" "src/simmpi/CMakeFiles/m2p_simmpi.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/instr/CMakeFiles/m2p_instr.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/m2p_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
